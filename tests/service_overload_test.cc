// Overload and failure semantics of the service (DESIGN.md §4): tiered
// admission control, graceful drain, deadline-pressure shedding, the
// deterministic client backoff, and the service-level fault-injection
// sweep. Runs under tsan in CI (name matches the Service regex) and the
// asan fault sweep (ServiceFaultInjectionTest matches FaultInjection).

#include <chrono>
#include <future>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/service/replay.h"
#include "src/service/service.h"
#include "src/service/stream.h"
#include "src/stream/doc_gen.h"

namespace xtc {
namespace {

std::vector<ServiceRequest> SmallBatch(int count) {
  StatusOr<std::vector<ServiceRequest>> batch =
      MakeFamilyBatch("filter", 3, count, 2);
  XTC_CHECK(batch.ok());
  return *std::move(batch);
}

ServiceRequest HostileRequest() {
  // NfaSchemaFamily: the Theorem 18 inclusion shape; determinization cost
  // 2^n lives in the compile, so this occupies a worker for a long time.
  StatusOr<std::vector<ServiceRequest>> batch = MakeFamilyBatch("nfa", 9, 1, 1);
  XTC_CHECK(batch.ok());
  return (*batch)[0];
}

TEST(ServiceOverloadTest, DrainCompletesQueuedWork) {
  TypecheckService::Options options;
  options.num_threads = 1;
  options.queue_capacity = 64;
  TypecheckService service(options);

  std::vector<std::future<ServiceResponse>> futures;
  for (ServiceRequest& request : SmallBatch(8)) {
    futures.push_back(service.Submit(std::move(request)));
  }
  DrainReport report = service.Stop(std::chrono::seconds(30));
  EXPECT_TRUE(report.clean);
  EXPECT_EQ(report.cancelled, 0u);
  for (std::future<ServiceResponse>& future : futures) {
    ServiceResponse response = future.get();
    EXPECT_TRUE(response.status.ok()) << response.status.ToString();
    EXPECT_TRUE(response.typechecks);
  }
  EXPECT_EQ(service.stats().completed, 8u);
}

TEST(ServiceOverloadTest, DrainDeadlineCancelsUnstartedWork) {
  TypecheckService::Options options;
  options.num_threads = 0;  // nobody will ever pop the queue
  options.queue_capacity = 16;
  TypecheckService service(options);

  std::vector<std::future<ServiceResponse>> futures;
  for (ServiceRequest& request : SmallBatch(4)) {
    futures.push_back(service.Submit(std::move(request)));
  }
  DrainReport report = service.Stop(std::chrono::milliseconds(10));
  EXPECT_FALSE(report.clean);
  EXPECT_EQ(report.drained, 0u);
  EXPECT_EQ(report.cancelled, 4u);
  for (std::future<ServiceResponse>& future : futures) {
    ServiceResponse response = future.get();
    EXPECT_EQ(response.status.code(), StatusCode::kResourceExhausted);
    EXPECT_EQ(response.tier, AdmissionTier::kRejected);
    EXPECT_EQ(response.shed_reason, ShedReason::kStopping);
  }
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.drain_cancelled, 4u);
  EXPECT_EQ(stats.failed, 4u);
}

TEST(ServiceOverloadTest, StopIsIdempotentAndClosesAdmission) {
  TypecheckService::Options options;
  options.num_threads = 1;
  TypecheckService service(options);
  DrainReport first = service.Stop(std::chrono::milliseconds(100));
  DrainReport again = service.Stop(std::chrono::seconds(30));
  EXPECT_EQ(first.clean, again.clean);
  EXPECT_EQ(first.cancelled, again.cancelled);

  ServiceResponse shed = service.Submit(SmallBatch(1)[0]).get();
  EXPECT_EQ(shed.status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(shed.shed_reason, ShedReason::kStopping);
  EXPECT_EQ(shed.retry_after_ms, 0u);  // not retryable: service going away
  EXPECT_EQ(service.stats().shed_stopping, 1u);
}

TEST(ServiceOverloadTest, SubmitVsStopRaceResolvesEveryFuture) {
  TypecheckService::Options options;
  options.num_threads = 2;
  options.queue_capacity = 64;
  TypecheckService service(options);

  constexpr int kClients = 4;
  constexpr int kPerClient = 50;
  std::vector<ServiceRequest> batch = SmallBatch(4);
  std::vector<std::vector<std::future<ServiceResponse>>> futures(kClients);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        futures[static_cast<std::size_t>(c)].push_back(
            service.Submit(batch[static_cast<std::size_t>(i) % batch.size()]));
      }
    });
  }
  // Stop races the submitting clients: some requests complete, some are
  // shed with `stopping`, some are cancelled at the drain deadline —
  // but every single future must resolve.
  DrainReport report = service.Stop(std::chrono::milliseconds(50));
  for (std::thread& client : clients) client.join();

  std::uint64_t ok = 0, shed = 0, cancelled_or_failed = 0;
  for (auto& client_futures : futures) {
    ASSERT_EQ(client_futures.size(), static_cast<std::size_t>(kPerClient));
    for (std::future<ServiceResponse>& future : client_futures) {
      ServiceResponse response = future.get();
      if (response.status.ok()) {
        ++ok;
      } else {
        ASSERT_EQ(response.status.code(), StatusCode::kResourceExhausted);
        (response.shed_reason == ShedReason::kStopping &&
                 response.tier == AdmissionTier::kRejected
             ? shed
             : cancelled_or_failed) += 1;
      }
    }
  }
  EXPECT_EQ(ok + shed + cancelled_or_failed,
            static_cast<std::uint64_t>(kClients * kPerClient));
  ServiceStats stats = service.stats();
  // Everything admitted was either completed or failed — nothing leaked.
  EXPECT_EQ(stats.submitted, stats.completed + stats.failed);
  EXPECT_EQ(stats.drain_cancelled, report.cancelled);
}

TEST(ServiceOverloadTest, TierDegradesWithQueueDepth) {
  TypecheckService::Options options;
  options.num_threads = 0;  // deterministic: the queue only fills
  options.queue_capacity = 8;
  TypecheckService service(options);

  std::vector<ServiceRequest> batch = SmallBatch(9);
  std::vector<std::future<ServiceResponse>> futures;
  for (ServiceRequest& request : batch) {
    futures.push_back(service.Submit(std::move(request)));
  }
  // Submissions 1-6 see depth 0..5 (load < 0.75): exact. Submissions 7-8
  // see depth 6, 7 (load 0.75, 0.875): degraded. Submission 9 finds the
  // queue full: shed.
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.tier_exact, 6u);
  EXPECT_EQ(stats.tier_approximate, 2u);
  EXPECT_EQ(stats.shed_queue_full, 1u);
  ServiceResponse last = futures.back().get();
  EXPECT_EQ(last.status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(last.shed_reason, ShedReason::kQueueFull);
  EXPECT_GT(last.retry_after_ms, 0u);  // admission sheds are retryable
  std::string line = last.ToJsonLine();
  EXPECT_NE(line.find("\"tier\":\"rejected\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"shed_reason\":\"queue_full\""), std::string::npos)
      << line;
  EXPECT_NE(line.find("\"retry_after_ms\""), std::string::npos) << line;
}

TEST(ServiceOverloadTest, DeadlinePressureShedsBeforeQueueing) {
  // Synthetic cost spike: a hostile compile occupies the only worker and
  // the cost prior is huge, so the predicted wait for a short-deadline
  // request exceeds its patience no matter whether the hostile request is
  // still queued or already in flight.
  TypecheckService::Options options;
  options.num_threads = 1;
  options.queue_capacity = 64;
  options.cost_prior_ms = 10000;
  TypecheckService service(options);

  std::future<ServiceResponse> hostile = service.Submit(HostileRequest());
  ServiceRequest urgent = SmallBatch(1)[0];
  urgent.deadline_ms = 50;
  ServiceResponse response = service.Submit(urgent).get();
  EXPECT_EQ(response.status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(response.shed_reason, ShedReason::kDeadline);
  EXPECT_EQ(response.tier, AdmissionTier::kRejected);
  EXPECT_GT(response.retry_after_ms, 0u);
  EXPECT_EQ(service.stats().shed_deadline, 1u);
  hostile.wait();  // hostile runs to completion under its own budget
}

TEST(ServiceOverloadTest, ValidateNeverDegradesToApproximate) {
  // Only typecheck has an approximate engine; other ops stay exact even
  // past the degrade threshold.
  TypecheckService::Options options;
  options.num_threads = 0;
  options.queue_capacity = 4;
  TypecheckService service(options);
  ServiceRequest validate;
  validate.op = ServiceOp::kValidate;
  validate.schema.start = "a";
  validate.schema.rules = {{"a", ""}};
  validate.tree = "a";
  for (int i = 0; i < 4; ++i) {
    validate.id = i + 1;
    service.Submit(validate);
  }
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.tier_exact, 4u);  // depth 3/4 = 0.75 would degrade typecheck
  EXPECT_EQ(stats.tier_approximate, 0u);
}

TEST(ServiceOverloadTest, RetryBackoffIsDeterministic) {
  RetryPolicy policy;
  policy.base_backoff_ms = 10;
  policy.max_backoff_ms = 2000;
  for (std::uint64_t attempt = 1; attempt <= 5; ++attempt) {
    std::uint64_t a = RetryBackoffMs(policy, attempt, 0, 42);
    std::uint64_t b = RetryBackoffMs(policy, attempt, 0, 42);
    EXPECT_EQ(a, b);  // same inputs, same backoff — reproducible runs
  }
}

TEST(ServiceOverloadTest, RetryBackoffGrowsCapsAndHonorsHints) {
  RetryPolicy policy;
  policy.base_backoff_ms = 10;
  policy.max_backoff_ms = 2000;
  // Doubling base with at most 25% jitter on top.
  for (std::uint64_t attempt = 1; attempt <= 8; ++attempt) {
    std::uint64_t expected_base =
        std::min<std::uint64_t>(10ull << (attempt - 1), 2000);
    std::uint64_t v = RetryBackoffMs(policy, attempt, 0, 7);
    EXPECT_GE(v, expected_base);
    EXPECT_LE(v, expected_base + expected_base / 4 + 1);
  }
  // The server's retry_after hint floors the backoff.
  EXPECT_GE(RetryBackoffMs(policy, 1, 500, 7), 500u);
  // Huge attempt counts saturate at the cap (plus jitter), never overflow.
  EXPECT_LE(RetryBackoffMs(policy, 60, 0, 7), 2000u + 501u);
}

TEST(ServiceOverloadTest, SubmitWithRetrySucceedsAfterTransientShed) {
  // Queue of 1 with no workers: the first slot fills, the second submit
  // sheds queue-full. After Stop drains, retries against a live service
  // are exercised end-to-end in the loadgen harness; here we prove the
  // helper's terminal behavior: a non-retryable response is returned as-is.
  TypecheckService::Options options;
  options.num_threads = 1;
  TypecheckService service(options);
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.base_backoff_ms = 1;
  RetryOutcome outcome =
      SubmitWithRetry(service, SmallBatch(1)[0], policy);
  EXPECT_TRUE(outcome.response.status.ok());
  EXPECT_EQ(outcome.attempts, 1u);  // no shed, no retry
  EXPECT_EQ(outcome.backoff_ms_total, 0u);
}

TEST(ServiceFaultInjectionTest, ServiceSweepYieldsWellFormedResponses) {
  // Ground truth for the batch, computed without any injector.
  std::vector<ServiceRequest> batch = SmallBatch(4);
  std::map<std::int64_t, bool> truth;
  {
    TypecheckService::Options options;
    options.num_threads = 0;
    TypecheckService service(options);
    for (const ServiceRequest& request : batch) {
      ServiceResponse response = service.Process(request);
      ASSERT_TRUE(response.status.ok()) << response.status.ToString();
      truth[request.id] = response.typechecks;
    }
  }

  // Count the service checkpoints one clean pass crosses.
  ServiceFaultInjector injector;
  auto run_batch = [&](TypecheckService& service) {
    std::vector<std::future<ServiceResponse>> futures;
    for (const ServiceRequest& request : batch) {
      futures.push_back(service.Submit(request));
    }
    std::vector<ServiceResponse> responses;
    for (std::future<ServiceResponse>& future : futures) {
      responses.push_back(future.get());
    }
    return responses;
  };
  std::uint64_t total_checkpoints = 0;
  {
    injector.FailAt(0);  // disarmed: count only
    TypecheckService::Options options;
    options.num_threads = 1;
    options.fault_injector = &injector;
    TypecheckService service(options);
    for (const ServiceResponse& response : run_batch(service)) {
      ASSERT_TRUE(response.status.ok());
    }
    total_checkpoints = injector.crossed();
  }
  ASSERT_GT(total_checkpoints, 0u);

  // The sweep: fail the n-th checkpoint for every n. Every injected
  // failure must surface as a well-formed kResourceExhausted response —
  // never a hang (future.get returns), never a torn cache entry (the
  // disarmed re-run on the same service still matches ground truth).
  for (std::uint64_t n = 1; n <= total_checkpoints; ++n) {
    injector.FailAt(n);
    TypecheckService::Options options;
    options.num_threads = 1;
    options.fault_injector = &injector;
    TypecheckService service(options);
    std::vector<ServiceResponse> responses = run_batch(service);
    ASSERT_NE(injector.fired(), nullptr) << "n=" << n;
    int injected = 0;
    for (const ServiceResponse& response : responses) {
      if (response.status.ok()) continue;
      EXPECT_EQ(response.status.code(), StatusCode::kResourceExhausted)
          << "n=" << n << ": " << response.status.ToString();
      EXPECT_NE(response.status.message().find("injected fault"),
                std::string::npos)
          << "n=" << n << ": " << response.status.ToString();
      ++injected;
    }
    EXPECT_EQ(injected, 1) << "n=" << n << " fired at " << injector.fired();

    injector.FailAt(0);  // disarm; same service, same cache
    for (const ServiceResponse& response : run_batch(service)) {
      ASSERT_TRUE(response.status.ok())
          << "after n=" << n << ": " << response.status.ToString();
      EXPECT_EQ(response.typechecks, truth[response.id]) << "n=" << n;
    }
  }
}

// Streams bypass the bounded worker queue, so the open-session count is
// their backpressure surface: past max_open_streams an OpenStream is shed
// up front with a retry hint, and any Finish (or abandonment) frees a slot.
TEST(ServiceOverloadTest, OpenStreamCapShedsWithRetryHint) {
  ServiceRequest request;
  {
    StatusOr<std::vector<ServiceRequest>> batch =
        MakeFamilyBatch("vstream", 50, 1, 1);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    request = (*batch)[0];
  }
  request.doc.clear();
  request.chunked = true;

  TypecheckService::Options options;
  options.num_threads = 1;
  options.max_open_streams = 2;
  TypecheckService service(options);

  std::unique_ptr<StreamSession> first = service.OpenStream(request);
  std::unique_ptr<StreamSession> second = service.OpenStream(request);
  EXPECT_TRUE(first->stream_status().ok());
  EXPECT_TRUE(second->stream_status().ok());

  // Third open: past the cap. Shed before any setup work, with a clamped
  // retry hint, and the response is well-formed without a chunk pushed.
  std::unique_ptr<StreamSession> third = service.OpenStream(request);
  EXPECT_FALSE(third->stream_status().ok());
  ServiceResponse shed = third->Finish();
  EXPECT_EQ(shed.status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(shed.shed_reason, ShedReason::kStreamLimit);
  EXPECT_GE(shed.retry_after_ms, 10u);
  EXPECT_LE(shed.retry_after_ms, 5000u);

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.open_streams, 2u);
  EXPECT_EQ(stats.shed_stream_limit, 1u);

  // Finish frees the slot: the next open is admitted again.
  first->Finish();
  EXPECT_EQ(service.stats().open_streams, 1u);
  std::unique_ptr<StreamSession> fourth = service.OpenStream(request);
  EXPECT_TRUE(fourth->stream_status().ok());
  EXPECT_EQ(service.stats().open_streams, 2u);

  // An abandoned session (destroyed unfinished) also frees its slot.
  fourth.reset();
  EXPECT_EQ(service.stats().open_streams, 1u);

  // max_open_streams = 0 disables the cap entirely.
  TypecheckService::Options unlimited;
  unlimited.num_threads = 1;
  unlimited.max_open_streams = 0;
  TypecheckService uncapped(unlimited);
  std::vector<std::unique_ptr<StreamSession>> many;
  for (int i = 0; i < 8; ++i) {
    many.push_back(uncapped.OpenStream(request));
    EXPECT_TRUE(many.back()->stream_status().ok());
  }
}

// The streaming sessions cross the same checkpoint ladder (enqueue,
// execute, compile, cache-adopt, respond) on the caller's thread. Sweep
// every crossing: each must yield exactly one well-formed injected-fault
// response, and a disarmed re-run on the same service (same cache) must
// still complete — no torn cache entries, no lost stats.
TEST(ServiceFaultInjectionTest, StreamSessionSweepYieldsWellFormedResponses) {
  const std::string doc =
      RenderDoc(StreamDocSpec{StreamDocSpec::Shape::kMixed, 200});
  ServiceRequest request;
  {
    StatusOr<std::vector<ServiceRequest>> batch =
        MakeFamilyBatch("vstream", 200, 1, 1);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    request = (*batch)[0];
  }
  request.doc.clear();
  request.chunked = true;

  auto run_stream = [&](TypecheckService& service) {
    std::unique_ptr<StreamSession> session = service.OpenStream(request);
    for (std::size_t fed = 0; fed < doc.size(); fed += 64) {
      session->Push(std::string_view(doc).substr(fed, 64));
    }
    return session->Finish();
  };

  ServiceFaultInjector injector;
  injector.FailAt(0);  // disarmed: count the checkpoints one stream crosses
  TypecheckService::Options options;
  options.num_threads = 1;
  options.fault_injector = &injector;
  std::uint64_t total_checkpoints = 0;
  {
    TypecheckService service(options);
    ServiceResponse clean = run_stream(service);
    ASSERT_TRUE(clean.status.ok()) << clean.status.ToString();
    EXPECT_TRUE(clean.valid);
    total_checkpoints = injector.crossed();
  }
  ASSERT_GT(total_checkpoints, 0u);

  for (std::uint64_t n = 1; n <= total_checkpoints; ++n) {
    injector.FailAt(n);
    TypecheckService service(options);  // fresh cache: compile paths re-run
    ServiceResponse response = run_stream(service);
    ASSERT_NE(injector.fired(), nullptr) << "n=" << n;
    EXPECT_FALSE(response.status.ok()) << "n=" << n;
    EXPECT_EQ(response.status.code(), StatusCode::kResourceExhausted)
        << "n=" << n << ": " << response.status.ToString();
    EXPECT_NE(response.status.message().find("injected fault"),
              std::string::npos)
        << "n=" << n << ": " << response.status.ToString();

    injector.FailAt(0);  // disarm; same service, warm cache
    ServiceResponse retry = run_stream(service);
    ASSERT_TRUE(retry.status.ok())
        << "after n=" << n << ": " << retry.status.ToString();
    EXPECT_TRUE(retry.valid) << "n=" << n;
  }
}

}  // namespace
}  // namespace xtc
