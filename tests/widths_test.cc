#include "src/td/widths.h"

#include <gtest/gtest.h>

#include "src/core/paper_examples.h"
#include "src/td/classes.h"
#include "src/workload/families.h"

namespace xtc {
namespace {

TEST(WidthsTest, Example12HasC3K6) {
  // Example 17: C = 3 and K = 6 via the path (q1,a)(q2,a)(q3,a)(q4,a).
  PaperExample ex = MakeExample12();
  WidthAnalysis w = AnalyzeWidths(*ex.transducer);
  EXPECT_EQ(w.copying_width, 3);
  ASSERT_TRUE(w.dpw_bounded);
  EXPECT_EQ(w.deletion_path_width, 6u);
}

TEST(WidthsTest, Example12DeletionWidthsMatchPaperTable) {
  PaperExample ex = MakeExample12();
  WidthAnalysis w = AnalyzeWidths(*ex.transducer);
  auto dw = [&](const char* name) {
    return w.deletion_width[static_cast<std::size_t>(
        *ex.transducer->FindState(name))];
  };
  EXPECT_EQ(dw("q1"), 2);
  EXPECT_EQ(dw("q2"), 3);
  EXPECT_EQ(dw("q3"), 1);
  EXPECT_EQ(dw("q4"), 0);
  EXPECT_EQ(dw("q5"), 2);
  EXPECT_EQ(dw("q6"), 2);
  EXPECT_EQ(dw("q7"), 1);
  EXPECT_EQ(dw("q8"), 1);
}

TEST(WidthsTest, Example12RecursivelyDeletingStates) {
  // q7 and q8 form the only deletion cycle.
  PaperExample ex = MakeExample12();
  WidthAnalysis w = AnalyzeWidths(*ex.transducer);
  auto rec = [&](const char* name) {
    return w.recursively_deleting[static_cast<std::size_t>(
        *ex.transducer->FindState(name))];
  };
  EXPECT_FALSE(rec("q1"));
  EXPECT_FALSE(rec("q2"));
  EXPECT_FALSE(rec("q3"));
  EXPECT_TRUE(rec("q7"));
  EXPECT_TRUE(rec("q8"));
}

TEST(WidthsTest, CopyOnCycleIsUnbounded) {
  // "Would there be a rule (q7, b) → q8 q8 then paths of arbitrary large
  // deletion width could be constructed" (Example 12's remark).
  PaperExample ex = MakeExample12();
  ex.alphabet->Intern("b");
  ASSERT_TRUE(ex.transducer->SetRuleFromString("q7", "b", "q8 q8").ok());
  // q8's rule mentions q7 on symbol a, closing a copying cycle.
  WidthAnalysis w = AnalyzeWidths(*ex.transducer);
  EXPECT_FALSE(w.dpw_bounded);
}

TEST(WidthsTest, BookTransducersMatchExample13) {
  // The first Example 10 transducer is in T^{1,1}, the second in T^{2,1}.
  PaperExample toc = MakeBookExample(false);
  WidthAnalysis w1 = AnalyzeWidths(*toc.transducer);
  EXPECT_EQ(w1.copying_width, 1);
  EXPECT_TRUE(w1.dpw_bounded);
  EXPECT_EQ(w1.deletion_path_width, 1u);
  EXPECT_TRUE(IsTrac(w1, 1, 1));

  PaperExample sum = MakeBookExample(true);
  WidthAnalysis w2 = AnalyzeWidths(*sum.transducer);
  EXPECT_EQ(w2.copying_width, 2);
  EXPECT_TRUE(w2.dpw_bounded);
  EXPECT_EQ(w2.deletion_path_width, 1u);
  EXPECT_TRUE(IsTrac(w2, 2, 1));
  EXPECT_FALSE(IsTrac(w2, 1, 1));
}

TEST(WidthsTest, RecursiveDeletionWithoutCopyingStaysWidthOne) {
  PaperExample ex = FilterFamily(3);
  WidthAnalysis w = AnalyzeWidths(*ex.transducer);
  EXPECT_TRUE(w.dpw_bounded);
  EXPECT_EQ(w.deletion_path_width, 1u);
  int q = *ex.transducer->FindState("q");
  EXPECT_TRUE(w.recursively_deleting[static_cast<std::size_t>(q)]);
}

TEST(WidthsTest, WidthFamilyScalesAsDocumented) {
  for (int k = 0; k <= 3; ++k) {
    PaperExample ex = WidthFamily(2, k);
    WidthAnalysis w = AnalyzeWidths(*ex.transducer);
    ASSERT_TRUE(w.dpw_bounded);
    EXPECT_EQ(w.deletion_path_width, static_cast<uint64_t>(1) << k) << k;
  }
  PaperExample wide = WidthFamily(5, 0);
  EXPECT_EQ(AnalyzeWidths(*wide.transducer).copying_width, 5);
}

TEST(WidthsTest, ClassPredicates) {
  PaperExample toc = MakeBookExample(false);
  EXPECT_FALSE(IsNonDeleting(*toc.transducer));
  // Every ToC rule has at most one state: a deleting relabeling.
  EXPECT_TRUE(IsDelRelab(*toc.transducer));
  // The summary transducer copies (book(q p)): not del-relab.
  PaperExample sum = MakeBookExample(true);
  EXPECT_FALSE(IsDelRelab(*sum.transducer));
  PaperExample relab = RelabFamily(2);
  EXPECT_TRUE(IsDelRelab(*relab.transducer));
  ClassReport report = ClassifyTransducer(*relab.transducer);
  EXPECT_TRUE(report.del_relab);
  EXPECT_FALSE(report.has_selectors);
  std::string line = ClassReportToString(report);
  EXPECT_NE(line.find("del-relab"), std::string::npos);
}

TEST(WidthsTest, NonDeletingDetection) {
  PaperExample ex6 = MakeExample6();
  // (q, a) -> c p has the state p at top level: deleting.
  EXPECT_FALSE(IsNonDeleting(*ex6.transducer));
  PaperExample relab = RelabFamily(2);
  // b(q) keeps the state below the top level... except the q0 rule r(q).
  EXPECT_TRUE(IsNonDeleting(*relab.transducer));
}

}  // namespace
}  // namespace xtc
