#include "src/base/budget.h"

#include <gtest/gtest.h>

#include <chrono>

#include "src/base/arena.h"
#include "src/core/hardness.h"
#include "src/core/paper_examples.h"
#include "src/core/trac.h"
#include "src/core/typecheck.h"
#include "src/fa/dfa.h"
#include "src/schema/witness.h"
#include "src/tree/tree.h"

namespace xtc {
namespace {

TEST(BudgetTest, UnlimitedBudgetNeverTrips) {
  Budget b;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(b.Check("test").ok());
  }
  EXPECT_EQ(b.checkpoints(), 1000u);
  EXPECT_FALSE(b.exhausted());
  EXPECT_EQ(b.cause(), ExhaustionCause::kNone);
}

TEST(BudgetTest, NullBudgetCheckIsFree) {
  EXPECT_TRUE(BudgetCheck(nullptr, "test").ok());
}

TEST(BudgetTest, StepFuelTripsAndIsSticky) {
  Budget b = Budget::WithMaxSteps(10);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(b.Check("test").ok()) << i;
  }
  Status s = b.Check("loop_name");
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(b.cause(), ExhaustionCause::kSteps);
  EXPECT_NE(s.message().find("steps"), std::string::npos);
  EXPECT_NE(s.message().find("loop_name"), std::string::npos);
  // Sticky: every later checkpoint repeats the same failure.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(b.Check("elsewhere").code(), StatusCode::kResourceExhausted);
  }
}

TEST(BudgetTest, InjectionFiresAtExactCheckpoint) {
  Budget b;
  b.set_fail_at_checkpoint(3);
  EXPECT_TRUE(b.Check("a").ok());
  EXPECT_TRUE(b.Check("b").ok());
  Status s = b.Check("c");
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(b.cause(), ExhaustionCause::kInjected);
}

TEST(BudgetTest, ByteCeilingDetectedAtNextCheck) {
  Budget b = Budget::WithMaxBytes(100);
  b.ChargeBytes(64);
  EXPECT_TRUE(b.Check("t").ok());
  b.ChargeBytes(64);  // 128 > 100, reported by the NEXT checkpoint
  Status s = b.Check("t");
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(b.cause(), ExhaustionCause::kBytes);
}

TEST(BudgetTest, ArenaChargesBytesWhileScoped) {
  Budget b;
  Arena arena;
  {
    ArenaBudgetScope scope(&arena, &b);
    arena.Allocate(1024, 8);
    EXPECT_GE(b.bytes_charged(), 1024u);
  }
  // Detached: later allocations are no longer charged.
  std::uint64_t charged = b.bytes_charged();
  arena.Allocate(1024, 8);
  EXPECT_EQ(b.bytes_charged(), charged);
}

TEST(BudgetTest, ExpiredDeadlineTripsWithinClockStride) {
  Budget b = Budget::WithDeadline(std::chrono::milliseconds(0));
  bool tripped = false;
  // The deadline is re-read every kClockStride (32) checkpoints, so an
  // already-expired deadline must fire within the first stride.
  for (int i = 0; i < 64 && !tripped; ++i) {
    tripped = !b.Check("t").ok();
  }
  EXPECT_TRUE(tripped);
  EXPECT_EQ(b.cause(), ExhaustionCause::kDeadline);
}

TEST(BudgetTest, DeadlineAccessorRoundTrips) {
  Budget b;
  EXPECT_FALSE(b.deadline().has_value());
  b.set_deadline(std::chrono::milliseconds(250));
  ASSERT_TRUE(b.deadline().has_value());
  EXPECT_EQ(b.deadline()->count(), 250);
}

TEST(BudgetTest, CauseNames) {
  EXPECT_STREQ(ExhaustionCauseName(ExhaustionCause::kNone), "none");
  EXPECT_STREQ(ExhaustionCauseName(ExhaustionCause::kDeadline), "deadline");
  EXPECT_STREQ(ExhaustionCauseName(ExhaustionCause::kSteps), "steps");
  EXPECT_STREQ(ExhaustionCauseName(ExhaustionCause::kBytes), "bytes");
  EXPECT_STREQ(ExhaustionCauseName(ExhaustionCause::kInjected), "injected");
}

TEST(BudgetTest, GovernedDfaOperationsRespectStepFuel) {
  // A small NFA whose determinization needs more than two checkpoints.
  Nfa nfa(2);
  for (int i = 0; i < 6; ++i) nfa.AddState(i == 0, i == 5);
  for (int i = 0; i < 5; ++i) {
    nfa.AddTransition(i, 0, i + 1);
    nfa.AddTransition(i, 1, 0);
  }
  Budget generous = Budget::WithMaxSteps(1u << 20);
  StatusOr<Dfa> det = Dfa::FromNfa(nfa, &generous);
  ASSERT_TRUE(det.ok());
  EXPECT_GT(generous.checkpoints(), 0u);

  Budget tiny = Budget::WithMaxSteps(2);
  StatusOr<Dfa> starved = Dfa::FromNfa(nfa, &tiny);
  ASSERT_FALSE(starved.ok());
  EXPECT_EQ(starved.status().code(), StatusCode::kResourceExhausted);
}

TEST(BudgetTest, GovernedMinimalValidTreeFailsSoftlyOnEmptyLanguage) {
  Alphabet alphabet;
  alphabet.Intern("r");
  Dtd d(&alphabet, 0);
  ASSERT_TRUE(d.SetRule("r", "r").ok());  // recursive: uninhabited
  Arena arena;
  TreeBuilder builder(&arena);
  Budget b;
  StatusOr<Node*> tree = MinimalValidTree(d, 0, &builder, &b);
  ASSERT_FALSE(tree.ok());
  EXPECT_EQ(tree.status().code(), StatusCode::kFailedPrecondition);
}

TEST(BudgetTest, TypecheckFillsBudgetTelemetry) {
  // Failing variant: counterexample construction allocates in the governed
  // result arena, so byte telemetry is non-zero too.
  PaperExample ex = MakeBookExample(/*with_summary=*/false);
  ASSERT_TRUE(ex.dout->SetRule("book", "title (chapter title)+").ok());
  TypecheckOptions opts;
  Budget b = Budget::WithMaxSteps(1u << 22);
  opts.budget = &b;
  StatusOr<TypecheckResult> r =
      Typecheck(*ex.transducer, *ex.din, *ex.dout, opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r->typechecks);
  EXPECT_FALSE(r->approximate);
  EXPECT_NE(r->counterexample, nullptr);
  EXPECT_GT(r->stats.budget_checkpoints, 0u);
  EXPECT_GT(r->stats.budget_bytes, 0u);
  EXPECT_GE(r->stats.elapsed_ms, 0.0);
  EXPECT_EQ(r->stats.exhaustion, ExhaustionCause::kNone);
}

TEST(BudgetTest, StarvedExactEngineReturnsResourceExhausted) {
  PaperExample ex = MakeBookExample(/*with_summary=*/true);
  TypecheckOptions opts;
  Budget b = Budget::WithMaxSteps(3);
  opts.budget = &b;
  StatusOr<TypecheckResult> r =
      Typecheck(*ex.transducer, *ex.din, *ex.dout, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST(BudgetTest, FallbackDegradesToApproximateVerdict) {
  PaperExample ex = MakeBookExample(/*with_summary=*/true);
  TypecheckOptions opts;
  Budget b = Budget::WithMaxSteps(3);  // starves the exact engine
  opts.budget = &b;
  opts.approximate_fallback = true;
  StatusOr<TypecheckResult> r =
      Typecheck(*ex.transducer, *ex.din, *ex.dout, opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->approximate);
  EXPECT_EQ(r->exact_status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(r->counterexample, nullptr);  // degraded mode never has one
}

// Theorem 18 acceptance: a hard instance (DFA intersection emptiness
// reduction) governed by a 100 ms deadline must come back within ~2x the
// deadline — either exhausted or genuinely finished.
Dfa LengthModDfa(int num_symbols, int modulus, int residue) {
  Dfa d(num_symbols);
  for (int i = 0; i < modulus; ++i) d.AddState(i == residue);
  d.SetInitial(0);
  for (int i = 0; i < modulus; ++i) {
    for (int s = 0; s < num_symbols; ++s) {
      d.SetTransition(i, s, (i + 1) % modulus);
    }
  }
  return d;
}

TEST(BudgetTest, DeadlineGovernsTheorem18HardInstance) {
  std::vector<Dfa> dfas;
  // Large coprime moduli: the counterexample (length lcm = 2*3*5*7*11*13)
  // hides deep in the doubling chain, far beyond a 100 ms budget.
  for (int m : {2, 3, 5, 7, 11, 13}) dfas.push_back(LengthModDfa(1, m, 0));
  PaperExample ex = MakeTheorem18Instance(dfas, {"x"});
  TypecheckOptions opts;
  opts.want_counterexample = false;
  opts.max_configs = 1u << 28;
  Budget b = Budget::WithDeadline(std::chrono::milliseconds(100));
  opts.budget = &b;
  auto start = std::chrono::steady_clock::now();
  StatusOr<TypecheckResult> r =
      TypecheckTrac(*ex.transducer, *ex.din, *ex.dout, opts);
  double ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - start)
                  .count();
  EXPECT_LT(ms, 200.0) << "governed run overshot 2x the deadline";
  if (!r.ok()) {
    EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
    EXPECT_EQ(b.cause(), ExhaustionCause::kDeadline);
  }
}

}  // namespace
}  // namespace xtc
