#include "src/service/service.h"

#include <future>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/typecheck.h"
#include "src/service/json.h"
#include "src/service/replay.h"
#include "src/service/stream.h"
#include "src/workload/families.h"

namespace xtc {
namespace {

ServiceRequest MustParse(const std::string& line) {
  StatusOr<ServiceRequest> request = ParseServiceRequest(line);
  XTC_CHECK_MSG(request.ok(), request.status().ToString().c_str());
  return *std::move(request);
}

TEST(ServiceRequestTest, ParsesTypecheckRequest) {
  ServiceRequest request = MustParse(
      R"js({"id": 7, "op": "typecheck",
          "din": {"start": "r", "rules": {"r": "a*"}},
          "dout": {"start": "r", "rules": {"r": "b*"}},
          "transducer": {"states": ["q"], "initial": "q",
                         "rules": [["q", "r", "r(q)"], ["q", "a", "b"]]},
          "deadline_ms": 250, "want_counterexample": false})js");
  EXPECT_EQ(request.id, 7);
  EXPECT_EQ(request.op, ServiceOp::kTypecheck);
  EXPECT_EQ(request.din.start, "r");
  EXPECT_EQ(request.dout.rules.size(), 1u);
  EXPECT_EQ(request.transducer.rules.size(), 2u);
  EXPECT_EQ(request.deadline_ms, 250u);
  EXPECT_FALSE(request.want_counterexample);
}

TEST(ServiceRequestTest, RejectsProtocolErrors) {
  EXPECT_FALSE(ParseServiceRequest("not json").ok());
  EXPECT_FALSE(ParseServiceRequest("[1]").ok());
  EXPECT_FALSE(ParseServiceRequest(R"js({"op": "frobnicate"})js").ok());
  EXPECT_FALSE(ParseServiceRequest(R"js({"op": "typecheck"})js").ok());
  EXPECT_FALSE(
      ParseServiceRequest(R"js({"op": "validate", "schema": {"start": "r"}})js")
          .ok());  // missing tree
  EXPECT_FALSE(ParseServiceRequest(
                   R"js({"op": "validate", "schema": {"start": 3}, "tree": "r"})js")
                   .ok());
}

TEST(ServiceRequestTest, RequestJsonRoundTrips) {
  StatusOr<ServiceRequest> request =
      TypecheckRequestFromExample(FilterFamily(3));
  ASSERT_TRUE(request.ok());
  request->id = 11;
  request->deadline_ms = 500;
  ServiceRequest back = MustParse(ServiceRequestToJson(*request));
  EXPECT_EQ(back.id, 11);
  EXPECT_EQ(back.deadline_ms, 500u);
  EXPECT_EQ(back.din.start, request->din.start);
  EXPECT_EQ(back.din.rules, request->din.rules);
  EXPECT_EQ(back.transducer.rules, request->transducer.rules);
  // And the canonical universe is identical after the round trip.
  EXPECT_EQ(*CollectUniverse(back), *CollectUniverse(*request));
}

class ServiceTest : public ::testing::Test {
 protected:
  TypecheckService::Options SyncOptions() {
    TypecheckService::Options options;
    options.num_threads = 2;
    return options;
  }
};

TEST_F(ServiceTest, TypecheckPositiveAndNegative) {
  TypecheckService service(SyncOptions());
  StatusOr<ServiceRequest> good = TypecheckRequestFromExample(FilterFamily(3));
  ASSERT_TRUE(good.ok());
  ServiceResponse response = service.Process(*good);
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_TRUE(response.typechecks);
  EXPECT_GT(response.elapsed_ms, 0);

  StatusOr<ServiceRequest> bad =
      TypecheckRequestFromExample(FailingFilterFamily(3));
  ASSERT_TRUE(bad.ok());
  response = service.Process(*bad);
  ASSERT_TRUE(response.status.ok());
  EXPECT_FALSE(response.typechecks);
  EXPECT_FALSE(response.counterexample.empty());
  // elapsed_ms telemetry works for ungoverned runs too (no deadline set).
  EXPECT_GT(response.engine_ms, 0);
}

TEST_F(ServiceTest, DelRelabEngineCachesResumableLazySnapshots) {
  TypecheckService service(SyncOptions());
  StatusOr<ServiceRequest> request =
      TypecheckRequestFromExample(RelabFamily(3));
  ASSERT_TRUE(request.ok());
  request->engine = TypecheckEngine::kDelRelab;

  // Cold: the snapshot lookup misses, the run completes, and the engine's
  // discovered state tables are parked on the compile cache.
  ServiceResponse first = service.Process(*request);
  ASSERT_TRUE(first.status.ok()) << first.status.ToString();
  CompileCache::Stats stats = service.cache().stats();
  EXPECT_EQ(stats.lazy_hits, 0u);
  EXPECT_GE(stats.lazy_misses, 1u);

  // Warm: the identical request resumes from the cached snapshot and must
  // reach the same verdict.
  ServiceResponse second = service.Process(*request);
  ASSERT_TRUE(second.status.ok()) << second.status.ToString();
  EXPECT_EQ(second.typechecks, first.typechecks);
  stats = service.cache().stats();
  EXPECT_GE(stats.lazy_hits, 1u);

  // The auto front door on the same artifacts agrees and never consults
  // the snapshot cache (the counters are unchanged).
  ServiceRequest auto_request = *request;
  auto_request.engine = TypecheckEngine::kAuto;
  ServiceResponse third = service.Process(auto_request);
  ASSERT_TRUE(third.status.ok()) << third.status.ToString();
  EXPECT_EQ(third.typechecks, first.typechecks);
  CompileCache::Stats after = service.cache().stats();
  EXPECT_EQ(after.lazy_hits, stats.lazy_hits);
  EXPECT_EQ(after.lazy_misses, stats.lazy_misses);

  // The wire field round-trips through the NDJSON form.
  ServiceRequest back = MustParse(ServiceRequestToJson(*request));
  EXPECT_EQ(back.engine, TypecheckEngine::kDelRelab);

  // An engine request outside the deleting-relabeling class is a content
  // error, not a crash.
  StatusOr<ServiceRequest> copying =
      TypecheckRequestFromExample(WidthFamily(/*c=*/2, /*k=*/2));
  ASSERT_TRUE(copying.ok());
  copying->engine = TypecheckEngine::kDelRelab;
  ServiceResponse rejected = service.Process(*copying);
  EXPECT_FALSE(rejected.status.ok());
  EXPECT_EQ(rejected.status.code(), StatusCode::kFailedPrecondition);
}

TEST_F(ServiceTest, ValidateAndTransform) {
  TypecheckService service(SyncOptions());
  ServiceRequest validate = MustParse(
      R"js({"op": "validate", "schema": {"start": "a", "rules": {"a": "b*"}},
          "tree": "a(b b)"})js");
  ServiceResponse response = service.Process(validate);
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_TRUE(response.valid);

  // A document label outside the request universe is cleanly invalid (its
  // id is past the universe; nothing aborts).
  validate = MustParse(
      R"js({"op": "validate", "schema": {"start": "a", "rules": {"a": "b*"}},
          "tree": "a(b zebra)"})js");
  response = service.Process(validate);
  ASSERT_TRUE(response.status.ok());
  EXPECT_FALSE(response.valid);

  ServiceRequest transform = MustParse(
      R"js({"op": "transform",
          "transducer": {"states": ["q"], "initial": "q",
                         "rules": [["q", "a", "c(q)"], ["q", "b", "d"]]},
          "tree": "a(b b)"})js");
  response = service.Process(transform);
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_EQ(response.output, "c(d d)");
}

TEST_F(ServiceTest, ContentErrorsSurfaceInTheResponse) {
  TypecheckService service(SyncOptions());
  // Protocol-valid but content-broken: rhs references unknown state name —
  // it parses as an output label, but an unparsable regex is a content
  // error from the worker.
  ServiceRequest request = MustParse(
      R"js({"op": "validate", "schema": {"start": "a", "rules": {"a": "(((b"}},
          "tree": "a"})js");
  ServiceResponse response = service.Process(request);
  EXPECT_FALSE(response.status.ok());
  EXPECT_EQ(response.status.code(), StatusCode::kInvalidArgument);
  std::string line = response.ToJsonLine();
  StatusOr<JsonValue> parsed = ParseJson(line);
  ASSERT_TRUE(parsed.ok()) << line;
  EXPECT_EQ(parsed->Find("status")->AsString(), "invalid_argument");
  ASSERT_NE(parsed->Find("error"), nullptr);
}

TEST_F(ServiceTest, DeadlineExhaustsHostileRequest) {
  TypecheckService service(SyncOptions());
  StatusOr<ServiceRequest> hostile =
      TypecheckRequestFromExample(NfaSchemaFamily(18));
  ASSERT_TRUE(hostile.ok());
  hostile->deadline_ms = 1;
  ServiceResponse response = service.Process(*hostile);
  // Either the governor tripped (expected for 2^18-state determinization in
  // 1ms) or a fast machine finished; both are well-formed.
  if (!response.status.ok()) {
    EXPECT_EQ(response.status.code(), StatusCode::kResourceExhausted);
  }
}

TEST_F(ServiceTest, SubmitDeliversConcurrently) {
  TypecheckService::Options options;
  options.num_threads = 4;
  TypecheckService service(options);
  StatusOr<std::vector<ServiceRequest>> batch =
      MakeFamilyBatch("filter", 3, 32, 4);
  ASSERT_TRUE(batch.ok());
  std::vector<std::future<ServiceResponse>> futures;
  for (ServiceRequest& request : *batch) {
    futures.push_back(service.Submit(std::move(request)));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    ServiceResponse response = futures[i].get();
    EXPECT_EQ(response.id, static_cast<std::int64_t>(i + 1));
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    EXPECT_TRUE(response.typechecks);
  }
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, 32u);
  EXPECT_EQ(stats.completed, 32u);
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.latency_count, 32u);
  EXPECT_GT(stats.latency_p50_ms, 0);
  EXPECT_GE(stats.latency_p99_ms, stats.latency_p50_ms);
  // 32 requests × 3 artifacts over 4 distinct sizes = 12 distinct keys;
  // concurrent first-misses on one key may each count (both compile, first
  // insert wins), so misses can exceed 12 but lookups always total 96.
  EXPECT_GE(stats.cache.misses, 12u);
  EXPECT_EQ(stats.cache.hits + stats.cache.misses, 96u);
  EXPECT_EQ(stats.cache.entries, 12u);
}

TEST_F(ServiceTest, ShedsWhenQueueIsFull) {
  TypecheckService::Options options;
  options.num_threads = 0;  // no workers: the queue can only fill
  options.queue_capacity = 4;
  TypecheckService service(options);
  StatusOr<ServiceRequest> request =
      TypecheckRequestFromExample(FilterFamily(2));
  ASSERT_TRUE(request.ok());
  std::vector<std::future<ServiceResponse>> futures;
  for (int i = 0; i < 6; ++i) {
    ServiceRequest copy = *request;
    copy.id = i + 1;
    futures.push_back(service.Submit(std::move(copy)));
  }
  // Requests 5 and 6 overflowed the 4-slot queue: their futures are already
  // resolved with kResourceExhausted.
  for (int i = 4; i < 6; ++i) {
    ServiceResponse response = futures[static_cast<std::size_t>(i)].get();
    EXPECT_EQ(response.status.code(), StatusCode::kResourceExhausted);
    EXPECT_EQ(response.id, i + 1);
  }
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.shed, 2u);
  EXPECT_EQ(stats.submitted, 4u);
  EXPECT_EQ(stats.queue_depth, 4u);
  // Destruction fails the still-queued requests cleanly (checked by the
  // futures resolving at all — gtest would hang otherwise).
}

TEST_F(ServiceTest, QueuedRequestsFailCleanlyOnShutdown) {
  std::vector<std::future<ServiceResponse>> futures;
  {
    TypecheckService::Options options;
    options.num_threads = 0;
    TypecheckService service(options);
    StatusOr<ServiceRequest> request =
        TypecheckRequestFromExample(FilterFamily(2));
    ASSERT_TRUE(request.ok());
    for (int i = 0; i < 3; ++i) futures.push_back(service.Submit(*request));
  }
  for (std::future<ServiceResponse>& future : futures) {
    ServiceResponse response = future.get();
    EXPECT_EQ(response.status.code(), StatusCode::kResourceExhausted);
  }
}

TEST_F(ServiceTest, ResponseLinesAreValidSingleLineJson) {
  TypecheckService service(SyncOptions());
  StatusOr<ServiceRequest> request =
      TypecheckRequestFromExample(FailingFilterFamily(2));
  ASSERT_TRUE(request.ok());
  request->id = 3;
  ServiceResponse response = service.Process(*request);
  std::string line = response.ToJsonLine();
  EXPECT_EQ(line.find('\n'), std::string::npos);
  StatusOr<JsonValue> parsed = ParseJson(line);
  ASSERT_TRUE(parsed.ok()) << line;
  EXPECT_DOUBLE_EQ(parsed->Find("id")->AsNumber(), 3);
  EXPECT_EQ(parsed->Find("op")->AsString(), "typecheck");
  EXPECT_FALSE(parsed->Find("typechecks")->AsBool());
  ASSERT_NE(parsed->Find("counterexample"), nullptr);
  ASSERT_NE(parsed->Find("cache"), nullptr);
}

// --- Streaming ops & the format field -------------------------------------

TEST(ServiceRequestTest, ParsesAndRoundTripsStreamRequests) {
  ServiceRequest request = MustParse(
      R"js({"id": 4, "op": "validate_stream",
          "schema": {"start": "root", "rules": {"root": "item*"}},
          "doc": "<root><item/></root>"})js");
  EXPECT_EQ(request.op, ServiceOp::kValidateStream);
  EXPECT_EQ(request.doc, "<root><item/></root>");
  EXPECT_FALSE(request.chunked);

  ServiceRequest back = MustParse(ServiceRequestToJson(request));
  EXPECT_EQ(back.op, ServiceOp::kValidateStream);
  EXPECT_EQ(back.doc, request.doc);
  EXPECT_EQ(back.schema.rules, request.schema.rules);

  ServiceRequest chunked = MustParse(
      R"js({"op": "transform_stream", "chunked": true,
          "transducer": {"states": ["q"], "initial": "q",
                         "rules": [["q", "a", "a(q)"]]}})js");
  EXPECT_EQ(chunked.op, ServiceOp::kTransformStream);
  EXPECT_TRUE(chunked.chunked);
  ServiceRequest chunked_back = MustParse(ServiceRequestToJson(chunked));
  EXPECT_TRUE(chunked_back.chunked);

  // A stream op with neither an inline doc nor chunked: true is malformed.
  EXPECT_FALSE(ParseServiceRequest(
                   R"js({"op": "validate_stream",
                       "schema": {"start": "r", "rules": {"r": "%"}}})js")
                   .ok());
}

TEST(ServiceRequestTest, ParsesAndRoundTripsTheFormatField) {
  ServiceRequest request = MustParse(
      R"js({"op": "validate", "format": "xml",
          "schema": {"start": "a", "rules": {"a": "b*"}},
          "tree": "<a><b/></a>"})js");
  EXPECT_EQ(request.format, DocFormat::kXml);
  ServiceRequest back = MustParse(ServiceRequestToJson(request));
  EXPECT_EQ(back.format, DocFormat::kXml);
  EXPECT_EQ(back.tree, request.tree);

  // Default is the paper's term syntax; garbage values are rejected.
  EXPECT_EQ(MustParse(R"js({"op": "validate", "tree": "a",
                          "schema": {"start": "a"}})js")
                .format,
            DocFormat::kTerm);
  EXPECT_FALSE(ParseServiceRequest(
                   R"js({"op": "validate", "format": "sgml", "tree": "a",
                       "schema": {"start": "a"}})js")
                   .ok());
}

TEST(ServiceRequestTest, DocChunkLinesParseAndRoundTrip) {
  StatusOr<DocChunk> chunk =
      ParseDocChunk(R"js({"doc_chunk": "<root><it", "last": false})js");
  ASSERT_TRUE(chunk.ok()) << chunk.status().ToString();
  EXPECT_EQ(chunk->data, "<root><it");
  EXPECT_FALSE(chunk->last);

  StatusOr<DocChunk> last = ParseDocChunk(DocChunkToJson({"em/></root>", true}));
  ASSERT_TRUE(last.ok());
  EXPECT_EQ(last->data, "em/></root>");
  EXPECT_TRUE(last->last);

  EXPECT_FALSE(ParseDocChunk(R"js({"last": true})js").ok());
  EXPECT_FALSE(ParseDocChunk(R"js({"doc_chunk": 7})js").ok());
  EXPECT_FALSE(ParseDocChunk("not json").ok());
}

TEST_F(ServiceTest, ValidateAndTransformAcceptXmlFormat) {
  TypecheckService service(SyncOptions());
  ServiceRequest validate = MustParse(
      R"js({"op": "validate", "format": "xml",
          "schema": {"start": "a", "rules": {"a": "b*"}},
          "tree": "<a><b/><b/></a>"})js");
  ServiceResponse response = service.Process(validate);
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_TRUE(response.valid);

  // The transform output follows the input format: XML in, XML out.
  ServiceRequest transform = MustParse(
      R"js({"op": "transform", "format": "xml",
          "transducer": {"states": ["q"], "initial": "q",
                         "rules": [["q", "a", "c(q)"], ["q", "b", "d"]]},
          "tree": "<a><b/><b/></a>"})js");
  response = service.Process(transform);
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_EQ(response.output, "<c><d/><d/></c>");

  // Term syntax in the tree field under format xml is a clean error.
  ServiceRequest mixed = MustParse(
      R"js({"op": "validate", "format": "xml",
          "schema": {"start": "a", "rules": {"a": "b*"}}, "tree": "a(b)"})js");
  response = service.Process(mixed);
  EXPECT_FALSE(response.status.ok());
  EXPECT_EQ(response.status.code(), StatusCode::kInvalidArgument);
}

TEST_F(ServiceTest, ValidateStreamInlineDoc) {
  TypecheckService service(SyncOptions());
  ServiceRequest request = MustParse(
      R"js({"op": "validate_stream",
          "schema": {"start": "root",
                     "rules": {"root": "(section|item)*",
                               "section": "(section|item)*"}},
          "doc": "<root><section><item/></section><item/></root>"})js");
  ServiceResponse response = service.Process(request);
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_TRUE(response.valid);
  EXPECT_EQ(response.tier, AdmissionTier::kExact);

  // Schema-invalid (item below item) and unknown-label docs: ok status,
  // valid false — verdict parity with the DOM validate op.
  request.doc = "<root><item><item/></item></root>";
  response = service.Process(request);
  ASSERT_TRUE(response.status.ok());
  EXPECT_FALSE(response.valid);
  request.doc = "<root><zebra/></root>";
  response = service.Process(request);
  ASSERT_TRUE(response.status.ok());
  EXPECT_FALSE(response.valid);

  // Malformed XML is an error, not a verdict.
  request.doc = "<root><item/>";
  response = service.Process(request);
  EXPECT_FALSE(response.status.ok());
  EXPECT_EQ(response.status.code(), StatusCode::kInvalidArgument);
}

TEST_F(ServiceTest, TransformStreamInlineDoc) {
  TypecheckService service(SyncOptions());
  ServiceRequest request = MustParse(
      R"js({"op": "transform_stream",
          "transducer": {"states": ["q"], "initial": "q",
                         "rules": [["q", "a", "c(q)"], ["q", "b", "d"]]},
          "doc": "<a><b/><b/></a>"})js");
  ServiceResponse response = service.Process(request);
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_EQ(response.output, "<c><d/><d/></c>");

  // Verdict parity with the DOM transform op under format xml.
  ServiceRequest dom = MustParse(
      R"js({"op": "transform", "format": "xml",
          "transducer": {"states": ["q"], "initial": "q",
                         "rules": [["q", "a", "c(q)"], ["q", "b", "d"]]},
          "tree": "<a><b/><b/></a>"})js");
  ServiceResponse dom_response = service.Process(dom);
  ASSERT_TRUE(dom_response.status.ok());
  EXPECT_EQ(dom_response.output, response.output);
}

TEST_F(ServiceTest, OpenStreamPumpsChunks) {
  TypecheckService service(SyncOptions());
  ServiceRequest request = MustParse(
      R"js({"id": 9, "op": "validate_stream", "chunked": true,
          "schema": {"start": "root", "rules": {"root": "item*"}}})js");
  std::unique_ptr<StreamSession> session = service.OpenStream(request);
  const std::string doc = "<root><item/><item/></root>";
  // Feed byte by byte: chunk boundaries must not matter.
  for (char c : doc) session->Push(std::string_view(&c, 1));
  ServiceResponse response = session->Finish();
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_TRUE(response.valid);
  EXPECT_EQ(response.id, 9);
  // Finish is idempotent.
  EXPECT_TRUE(session->Finish().status.ok());

  ServiceStats stats = service.stats();
  EXPECT_GE(stats.completed, 1u);
}

TEST_F(ServiceTest, ChunkedRequestViaProcessIsRejected) {
  // Process has no chunk transport; a chunked stream request needs
  // OpenStream (or xtcd). The error must be a clean protocol error.
  TypecheckService service(SyncOptions());
  ServiceRequest request = MustParse(
      R"js({"op": "validate_stream", "chunked": true,
          "schema": {"start": "root", "rules": {"root": "item*"}}})js");
  ServiceResponse response = service.Process(request);
  EXPECT_FALSE(response.status.ok());
  EXPECT_EQ(response.status.code(), StatusCode::kInvalidArgument);
}

TEST_F(ServiceTest, StreamResponseLinesAreWellFormed) {
  TypecheckService service(SyncOptions());
  ServiceRequest request = MustParse(
      R"js({"id": 12, "op": "transform_stream",
          "transducer": {"states": ["q"], "initial": "q",
                         "rules": [["q", "a", "c(q)"]]},
          "doc": "<a><a/></a>"})js");
  ServiceResponse response = service.Process(request);
  std::string line = response.ToJsonLine();
  EXPECT_EQ(line.find('\n'), std::string::npos);
  StatusOr<JsonValue> parsed = ParseJson(line);
  ASSERT_TRUE(parsed.ok()) << line;
  EXPECT_DOUBLE_EQ(parsed->Find("id")->AsNumber(), 12);
  EXPECT_EQ(parsed->Find("op")->AsString(), "transform_stream");
  ASSERT_NE(parsed->Find("output"), nullptr);
  EXPECT_EQ(parsed->Find("output")->AsString(), "<c><c/></c>");
}

// Satellite regression: ungoverned Typecheck() runs (budget == nullptr)
// populate stats.elapsed_ms from the WallTimer fallback.
TEST(ElapsedMsTest, UngovernedRunsPopulateElapsed) {
  PaperExample ex = FilterFamily(4);
  StatusOr<TypecheckResult> result =
      Typecheck(*ex.transducer, *ex.din, *ex.dout, {});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->typechecks);
  EXPECT_GT(result->stats.elapsed_ms, 0);
}

}  // namespace
}  // namespace xtc
