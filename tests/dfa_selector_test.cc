// Theorem 29: transducers with DFA selectors (T^DFA). Selection semantics,
// equivalence with XPath patterns via the Theorem 23 A_P encoding, and the
// compilation of DFA selectors into deleting states on non-deleting
// transducers.

#include <gtest/gtest.h>

#include <random>

#include "src/core/typecheck.h"
#include "src/td/compile_selectors.h"
#include "src/td/exec.h"
#include "src/tree/codec.h"
#include "src/workload/generators.h"
#include "src/xpath/eval.h"
#include "src/xpath/parser.h"
#include "src/xpath/to_dfa.h"

namespace xtc {
namespace {

class DfaSelectorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (const char* s : {"a", "b", "c"}) alphabet_.Intern(s);
  }

  Node* Tree(const char* term) {
    StatusOr<Node*> t = ParseTerm(term, &alphabet_, &builder_);
    EXPECT_TRUE(t.ok());
    return *t;
  }

  // The path DFA of an XPath pattern (the A_P encoding of Theorem 23).
  Dfa PatternDfa(const char* pattern) {
    StatusOr<XPathPatternPtr> p = ParseXPath(pattern, &alphabet_);
    EXPECT_TRUE(p.ok());
    StatusOr<Dfa> dfa = XPathToDfa(**p, alphabet_.size());
    EXPECT_TRUE(dfa.ok());
    return *dfa;
  }

  Alphabet alphabet_;
  Arena arena_;
  TreeBuilder builder_{&arena_};
};

TEST_F(DfaSelectorTest, SelectionMatchesPathSemantics) {
  // DFA for "child a then child b" == ./a/b.
  Dfa d = PatternDfa("./a/b");
  Node* t = Tree("c(a(b b(c)) b a(a(b)))");
  std::vector<const Node*> selected = EvalDfaSelector(d, t);
  ASSERT_EQ(selected.size(), 2u);
  EXPECT_EQ(ToTermString(selected[0], alphabet_), "b");
  EXPECT_EQ(ToTermString(selected[1], alphabet_), "b(c)");
}

TEST_F(DfaSelectorTest, TransducerWithDfaSelectorRuns) {
  Transducer t(&alphabet_);
  t.AddState("q0");
  t.AddState("q");
  t.SetInitial(0);
  int sel = t.AddSelector(Selector{nullptr, PatternDfa(".//b")});
  t.SetRule(0, *alphabet_.Find("c"),
            {RhsNode::Label(*alphabet_.Find("c"), {RhsNode::Select(1, sel)})});
  ASSERT_TRUE(t.SetRuleFromString("q", "b", "b").ok());
  Node* input = Tree("c(a(b) b(b))");
  Node* out = Apply(t, input, &builder_);
  ASSERT_NE(out, nullptr);
  // Three b's in document order.
  EXPECT_EQ(ToTermString(out, alphabet_), "c(b b b)");
}

// The Theorem 29 construction: compiled DFA-selector transducers behave
// identically on random trees.
class DfaSelectorCompileTest : public ::testing::TestWithParam<const char*> {};

TEST_P(DfaSelectorCompileTest, CompilationPreservesSemantics) {
  Alphabet alphabet;
  for (const char* s : {"a", "b", "c"}) alphabet.Intern(s);
  StatusOr<XPathPatternPtr> p = ParseXPath(GetParam(), &alphabet);
  ASSERT_TRUE(p.ok());
  StatusOr<Dfa> dfa = XPathToDfa(**p, alphabet.size());
  ASSERT_TRUE(dfa.ok());

  // A non-deleting transducer (Theorem 29's precondition) using the DFA
  // selector inside a label.
  Transducer t(&alphabet);
  t.AddState("q0");
  t.AddState("q");
  t.SetInitial(0);
  int sel = t.AddSelector(Selector{nullptr, *dfa});
  t.SetRule(0, *alphabet.Find("a"),
            {RhsNode::Label(*alphabet.Find("c"), {RhsNode::Select(1, sel)})});
  ASSERT_TRUE(t.SetRuleFromString("q", "a", "a").ok());
  ASSERT_TRUE(t.SetRuleFromString("q", "b", "b(q)").ok());
  ASSERT_TRUE(t.SetRuleFromString("q", "c", "c").ok());

  StatusOr<Transducer> compiled = CompileSelectors(t);
  ASSERT_TRUE(compiled.ok());
  EXPECT_FALSE(compiled->HasSelectors());
  std::mt19937 rng(41);
  Arena arena;
  TreeBuilder builder(&arena);
  for (int trial = 0; trial < 40; ++trial) {
    Node* body = RandomTree(&rng, alphabet.size(), 4, 3, &builder);
    Node* input = builder.Make(*alphabet.Find("a"), body->Children());
    Node* out1 = Apply(t, input, &builder);
    Node* out2 = Apply(*compiled, input, &builder);
    ASSERT_NE(out1, nullptr);
    EXPECT_TRUE(TreeEqual(out1, out2))
        << GetParam() << " on " << ToTermString(input, alphabet);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, DfaSelectorCompileTest,
                         ::testing::Values("./a", ".//b", "./b/a", ".//b/c",
                                           ".//*", "./*/b"));

TEST_F(DfaSelectorTest, DispatcherHandlesDfaSelectors) {
  // A filtering transformation with a DFA selector, end to end.
  Alphabet alphabet;
  for (const char* s : {"root", "item", "title"}) alphabet.Intern(s);
  Dtd din(&alphabet, *alphabet.Find("root"));
  ASSERT_TRUE(din.SetRule("root", "item+").ok());
  ASSERT_TRUE(din.SetRule("item", "title").ok());
  Dtd dout(&alphabet, *alphabet.Find("root"));
  ASSERT_TRUE(dout.SetRule("root", "title+").ok());
  Transducer t(&alphabet);
  t.AddState("q0");
  t.AddState("q");
  t.SetInitial(0);
  StatusOr<XPathPatternPtr> p = ParseXPath(".//title", &alphabet);
  ASSERT_TRUE(p.ok());
  StatusOr<Dfa> dfa = XPathToDfa(**p, alphabet.size());
  ASSERT_TRUE(dfa.ok());
  int sel = t.AddSelector(Selector{nullptr, *dfa});
  t.SetRule(0, *alphabet.Find("root"),
            {RhsNode::Label(*alphabet.Find("root"), {RhsNode::Select(1, sel)})});
  ASSERT_TRUE(t.SetRuleFromString("q", "title", "title").ok());
  StatusOr<TypecheckResult> r = Typecheck(t, din, dout);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->typechecks);
}

}  // namespace
}  // namespace xtc
