// Differential properties of the lazy frontier emptiness engine
// (src/nta/lazy.h) against the eager reference pipeline: identical verdicts
// on random instances, valid counterexample witnesses, agreement under
// resource exhaustion, and snapshot export/resume round-trips.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>

#include "src/base/arena.h"
#include "src/base/budget.h"
#include "src/nta/lazy.h"
#include "src/nta/nta.h"
#include "src/tree/hashcons.h"
#include "src/tree/tree.h"
#include "src/workload/generators.h"

namespace xtc {
namespace {

// The inclusion query L(din) ⊆ L(dout) posed as product emptiness:
// L(A_in) ∩ complement L(A_out), with A_out tracked by on-the-fly subset
// construction. The NTAs sit behind unique_ptr so the spec's borrowed
// pointers stay valid when the query is returned by value.
struct InclusionQuery {
  std::unique_ptr<Nta> a;
  std::unique_ptr<Nta> b;
  LazyProductSpec spec;
};

InclusionQuery MakeInclusion(std::uint32_t seed) {
  RandomOptions options;
  options.num_symbols = 3 + static_cast<int>(seed % 3);
  options.num_states = 3;
  PaperExample ex = RandomInstance(seed, options, /*re_plus=*/seed % 2 == 1);
  InclusionQuery q{std::make_unique<Nta>(Nta::FromDtd(*ex.din)),
                   std::make_unique<Nta>(Nta::FromDtd(*ex.dout)),
                   {}};
  q.spec.AddNta(q.a.get());
  q.spec.AddDeterminized(q.b.get(), /*complement=*/true);
  return q;
}

TEST(LazyDeterminizeTest, VerdictsMatchEagerOnRandomInclusions) {
  int nonempty = 0;
  for (std::uint32_t seed = 1; seed <= 80; ++seed) {
    InclusionQuery q = MakeInclusion(seed);
    SharedForest lazy_forest;
    StatusOr<EmptinessOutcome> lazy = LazyEmptiness(q.spec, &lazy_forest);
    StatusOr<EmptinessOutcome> eager = EagerEmptiness(q.spec, nullptr);
    ASSERT_TRUE(lazy.ok()) << "seed " << seed << ": " << lazy.status().ToString();
    ASSERT_TRUE(eager.ok()) << "seed " << seed << ": " << eager.status().ToString();
    EXPECT_EQ(lazy->empty, eager->empty) << "seed " << seed;
    if (!lazy->empty) {
      ++nonempty;
      // The witness must be a genuine inclusion counterexample: accepted by
      // the input NTA, rejected by the output NTA.
      ASSERT_GE(lazy->witness, 0) << "seed " << seed;
      Arena arena;
      TreeBuilder builder(&arena);
      StatusOr<Node*> tree =
          lazy_forest.Materialize(lazy->witness, &builder, 1 << 20);
      ASSERT_TRUE(tree.ok()) << "seed " << seed << ": " << tree.status().ToString();
      EXPECT_TRUE(q.a->Accepts(*tree)) << "seed " << seed;
      EXPECT_FALSE(q.b->Accepts(*tree)) << "seed " << seed;
    }
  }
  // The sweep must exercise both verdicts to mean anything.
  EXPECT_GT(nonempty, 0);
  EXPECT_LT(nonempty, 80);
}

TEST(LazyDeterminizeTest, VerdictsMatchEagerOnPureExistentialProducts) {
  // Two existential components (plain intersection, no determinization):
  // the joint-run product path of the lazy engine.
  for (std::uint32_t seed = 1; seed <= 40; ++seed) {
    RandomOptions options;
    options.num_symbols = 3;
    PaperExample ex1 = RandomInstance(seed, options, /*re_plus=*/false);
    PaperExample ex2 = RandomInstance(seed + 1000, options, /*re_plus=*/true);
    Nta a = Nta::FromDtd(*ex1.din);
    Nta b = Nta::FromDtd(*ex2.din);
    if (a.num_symbols() != b.num_symbols()) continue;
    LazyProductSpec spec;
    spec.AddNta(&a);
    spec.AddNta(&b);
    SharedForest forest;
    StatusOr<EmptinessOutcome> lazy = LazyEmptiness(spec, &forest);
    StatusOr<EmptinessOutcome> eager = EagerEmptiness(spec, nullptr);
    ASSERT_TRUE(lazy.ok()) << "seed " << seed << ": " << lazy.status().ToString();
    ASSERT_TRUE(eager.ok()) << "seed " << seed << ": " << eager.status().ToString();
    EXPECT_EQ(lazy->empty, eager->empty) << "seed " << seed;
    if (!lazy->empty) {
      Arena arena;
      TreeBuilder builder(&arena);
      StatusOr<Node*> tree =
          forest.Materialize(lazy->witness, &builder, 1 << 20);
      ASSERT_TRUE(tree.ok()) << "seed " << seed;
      EXPECT_TRUE(a.Accepts(*tree) && b.Accepts(*tree)) << "seed " << seed;
    }
  }
}

TEST(LazyDeterminizeTest, BothEnginesReportResourceExhaustedOnTrippedBudget) {
  // Trivial instances can finish before the first checkpoint; every run
  // whose budget does trip must unwind with kResourceExhausted (never a
  // wrong verdict), and the sweep must trip both engines at least once.
  int tripped_lazy = 0;
  int tripped_eager = 0;
  for (std::uint32_t seed = 1; seed <= 20; ++seed) {
    InclusionQuery q = MakeInclusion(seed);
    for (EmptinessEngine engine :
         {EmptinessEngine::kLazy, EmptinessEngine::kEager}) {
      Budget budget;
      budget.set_max_steps(1);
      LazyOptions options;
      options.budget = &budget;
      StatusOr<EmptinessOutcome> out =
          engine == EmptinessEngine::kLazy
              ? LazyEmptiness(q.spec, nullptr, options)
              : EagerEmptiness(q.spec, nullptr, options);
      if (!budget.exhausted()) {
        EXPECT_TRUE(out.ok()) << "seed " << seed << ": "
                              << out.status().ToString();
        continue;
      }
      (engine == EmptinessEngine::kLazy ? tripped_lazy : tripped_eager) += 1;
      EXPECT_FALSE(out.ok()) << "seed " << seed;
      EXPECT_EQ(out.status().code(), StatusCode::kResourceExhausted)
          << "seed " << seed << ": " << out.status().ToString();
    }
  }
  EXPECT_GT(tripped_lazy, 0);
  EXPECT_GT(tripped_eager, 0);
}

TEST(LazyDeterminizeTest, StateCapsFailSoftWithResourceExhausted) {
  InclusionQuery q = MakeInclusion(7);
  LazyOptions options;
  options.max_configs = 1;
  StatusOr<EmptinessOutcome> out = LazyEmptiness(q.spec, nullptr, options);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kResourceExhausted);
}

TEST(LazyDeterminizeTest, SnapshotRoundTripPreservesVerdicts) {
  for (std::uint32_t seed = 1; seed <= 40; ++seed) {
    InclusionQuery q = MakeInclusion(seed);
    LazySnapshot snapshot;
    LazyOptions export_options;
    export_options.export_snapshot = &snapshot;
    StatusOr<EmptinessOutcome> cold =
        LazyEmptiness(q.spec, nullptr, export_options);
    ASSERT_TRUE(cold.ok()) << "seed " << seed << ": " << cold.status().ToString();
    // A clean run always exports a complete snapshot carrying the verdict.
    EXPECT_TRUE(snapshot.complete) << "seed " << seed;
    EXPECT_EQ(snapshot.empty, cold->empty) << "seed " << seed;

    // Resume without a forest: the complete snapshot short-circuits.
    LazyOptions resume_options;
    resume_options.resume = &snapshot;
    StatusOr<EmptinessOutcome> warm =
        LazyEmptiness(q.spec, nullptr, resume_options);
    ASSERT_TRUE(warm.ok()) << "seed " << seed << ": " << warm.status().ToString();
    EXPECT_EQ(warm->empty, cold->empty) << "seed " << seed;
    EXPECT_TRUE(warm->stats.resumed) << "seed " << seed;

    // Resume with a forest on a non-empty verdict: the witness must be
    // re-derived (the snapshot stores tables, not trees) and stay valid.
    if (!cold->empty) {
      SharedForest forest;
      StatusOr<EmptinessOutcome> witnessed =
          LazyEmptiness(q.spec, &forest, resume_options);
      ASSERT_TRUE(witnessed.ok()) << "seed " << seed;
      EXPECT_FALSE(witnessed->empty) << "seed " << seed;
      ASSERT_GE(witnessed->witness, 0) << "seed " << seed;
      Arena arena;
      TreeBuilder builder(&arena);
      StatusOr<Node*> tree =
          forest.Materialize(witnessed->witness, &builder, 1 << 20);
      ASSERT_TRUE(tree.ok()) << "seed " << seed;
      EXPECT_TRUE(q.a->Accepts(*tree)) << "seed " << seed;
      EXPECT_FALSE(q.b->Accepts(*tree)) << "seed " << seed;
    }
  }
}

TEST(LazyDeterminizeTest, FailedRunsExportNoSnapshot) {
  InclusionQuery q = MakeInclusion(3);
  LazySnapshot snapshot;
  LazyOptions options;
  options.export_snapshot = &snapshot;
  options.max_configs = 1;
  StatusOr<EmptinessOutcome> out = LazyEmptiness(q.spec, nullptr, options);
  ASSERT_FALSE(out.ok());
  EXPECT_FALSE(snapshot.complete);
  for (const LazySnapshot::DetTable& table : snapshot.det_tables) {
    EXPECT_TRUE(table.pool.empty());
  }
}

TEST(LazyDeterminizeTest, EmptySpecIsInvalid) {
  LazyProductSpec spec;
  StatusOr<EmptinessOutcome> out = LazyEmptiness(spec, nullptr);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Parallel frontier engine (LazyOptions::threads > 1): the sharded engine
// must be observationally identical to the sequential one — verdicts,
// witness validity, snapshot semantics, and failure modes — at every
// thread count, including heavy oversubscription of this machine.

constexpr int kThreadSweep[] = {1, 2, 4, 8};

TEST(LazyParallelTest, VerdictsMatchSequentialAcrossThreadCounts) {
  int nonempty = 0;
  for (std::uint32_t seed = 1; seed <= 80; ++seed) {
    InclusionQuery q = MakeInclusion(seed);
    StatusOr<EmptinessOutcome> sequential = LazyEmptiness(q.spec, nullptr);
    ASSERT_TRUE(sequential.ok())
        << "seed " << seed << ": " << sequential.status().ToString();
    if (!sequential->empty) ++nonempty;
    for (int threads : kThreadSweep) {
      LazyOptions options;
      options.threads = threads;
      SharedForest forest;
      StatusOr<EmptinessOutcome> parallel =
          LazyEmptiness(q.spec, &forest, options);
      ASSERT_TRUE(parallel.ok()) << "seed " << seed << " threads " << threads
                                 << ": " << parallel.status().ToString();
      EXPECT_EQ(parallel->empty, sequential->empty)
          << "seed " << seed << " threads " << threads;
      if (!parallel->empty) {
        // Which accepting config wins the race may differ per run; the
        // witness must still be a genuine counterexample.
        ASSERT_GE(parallel->witness, 0)
            << "seed " << seed << " threads " << threads;
        Arena arena;
        TreeBuilder builder(&arena);
        StatusOr<Node*> tree =
            forest.Materialize(parallel->witness, &builder, 1 << 20);
        ASSERT_TRUE(tree.ok()) << "seed " << seed << " threads " << threads
                               << ": " << tree.status().ToString();
        EXPECT_TRUE(q.a->Accepts(*tree))
            << "seed " << seed << " threads " << threads;
        EXPECT_FALSE(q.b->Accepts(*tree))
            << "seed " << seed << " threads " << threads;
      }
    }
  }
  EXPECT_GT(nonempty, 0);
  EXPECT_LT(nonempty, 80);
}

TEST(LazyParallelTest, VerdictsMatchOnPureExistentialProducts) {
  for (std::uint32_t seed = 1; seed <= 20; ++seed) {
    RandomOptions gen;
    gen.num_symbols = 3;
    PaperExample ex1 = RandomInstance(seed, gen, /*re_plus=*/false);
    PaperExample ex2 = RandomInstance(seed + 1000, gen, /*re_plus=*/true);
    Nta a = Nta::FromDtd(*ex1.din);
    Nta b = Nta::FromDtd(*ex2.din);
    if (a.num_symbols() != b.num_symbols()) continue;
    LazyProductSpec spec;
    spec.AddNta(&a);
    spec.AddNta(&b);
    StatusOr<EmptinessOutcome> sequential = LazyEmptiness(spec, nullptr);
    ASSERT_TRUE(sequential.ok()) << "seed " << seed;
    LazyOptions options;
    options.threads = 4;
    SharedForest forest;
    StatusOr<EmptinessOutcome> parallel = LazyEmptiness(spec, &forest, options);
    ASSERT_TRUE(parallel.ok())
        << "seed " << seed << ": " << parallel.status().ToString();
    EXPECT_EQ(parallel->empty, sequential->empty) << "seed " << seed;
    if (!parallel->empty) {
      Arena arena;
      TreeBuilder builder(&arena);
      StatusOr<Node*> tree =
          forest.Materialize(parallel->witness, &builder, 1 << 20);
      ASSERT_TRUE(tree.ok()) << "seed " << seed;
      EXPECT_TRUE(a.Accepts(*tree) && b.Accepts(*tree)) << "seed " << seed;
    }
  }
}

TEST(LazyParallelTest, SnapshotsInterchangeableWithSequential) {
  // Snapshots are a merged-table artifact: a parallel export must resume a
  // sequential run and vice versa, with identical verdicts and the same
  // short-circuit/witness-re-derivation semantics as the sequential pair.
  for (std::uint32_t seed = 1; seed <= 20; ++seed) {
    InclusionQuery q = MakeInclusion(seed);
    LazySnapshot from_parallel;
    LazyOptions par_export;
    par_export.threads = 4;
    // Antichain pruning makes the discovered-table fixpoint
    // schedule-dependent (a config stepped before its tombstone is observed
    // can mint extra det states), so the table-size equality below only
    // holds for the unpruned discovery fixpoint; antichain_test.cc covers
    // snapshots with pruning enabled.
    par_export.antichain = false;
    par_export.export_snapshot = &from_parallel;
    StatusOr<EmptinessOutcome> par_cold =
        LazyEmptiness(q.spec, nullptr, par_export);
    ASSERT_TRUE(par_cold.ok())
        << "seed " << seed << ": " << par_cold.status().ToString();
    EXPECT_TRUE(from_parallel.complete) << "seed " << seed;
    EXPECT_EQ(from_parallel.empty, par_cold->empty) << "seed " << seed;

    LazySnapshot from_sequential;
    LazyOptions seq_export;
    seq_export.antichain = false;
    seq_export.export_snapshot = &from_sequential;
    StatusOr<EmptinessOutcome> seq_cold =
        LazyEmptiness(q.spec, nullptr, seq_export);
    ASSERT_TRUE(seq_cold.ok()) << "seed " << seed;
    EXPECT_EQ(par_cold->empty, seq_cold->empty) << "seed " << seed;
    // Same discovery fixpoint: the merged det tables agree in size (ids may
    // be permuted — insertion order is race-dependent). Only saturating
    // (empty-verdict) runs reach the unique fixpoint; on early exit the
    // parallel tables are a schedule-dependent prefix — workers observe
    // `stop_` asynchronously, so how many det states get minted after the
    // winning config varies run to run.
    ASSERT_EQ(from_parallel.det_tables.size(),
              from_sequential.det_tables.size());
    if (seq_cold->empty) {
      for (std::size_t d = 0; d < from_parallel.det_tables.size(); ++d) {
        EXPECT_EQ(from_parallel.det_tables[d].offsets.size(),
                  from_sequential.det_tables[d].offsets.size())
            << "seed " << seed << " det " << d;
      }
    }

    // Cross-resume both ways, re-sharding where the resumer is parallel.
    struct Direction {
      const LazySnapshot* snapshot;
      int threads;
    } directions[] = {{&from_parallel, 1}, {&from_sequential, 8}};
    for (const Direction& dir : directions) {
      LazyOptions resume;
      resume.resume = dir.snapshot;
      resume.threads = dir.threads;
      StatusOr<EmptinessOutcome> warm = LazyEmptiness(q.spec, nullptr, resume);
      ASSERT_TRUE(warm.ok()) << "seed " << seed << " threads " << dir.threads;
      EXPECT_EQ(warm->empty, par_cold->empty)
          << "seed " << seed << " threads " << dir.threads;
      EXPECT_TRUE(warm->stats.resumed)
          << "seed " << seed << " threads " << dir.threads;
      if (!par_cold->empty) {
        SharedForest forest;
        StatusOr<EmptinessOutcome> witnessed =
            LazyEmptiness(q.spec, &forest, resume);
        ASSERT_TRUE(witnessed.ok())
            << "seed " << seed << " threads " << dir.threads;
        ASSERT_GE(witnessed->witness, 0);
        Arena arena;
        TreeBuilder builder(&arena);
        StatusOr<Node*> tree =
            forest.Materialize(witnessed->witness, &builder, 1 << 20);
        ASSERT_TRUE(tree.ok()) << "seed " << seed;
        EXPECT_TRUE(q.a->Accepts(*tree)) << "seed " << seed;
        EXPECT_FALSE(q.b->Accepts(*tree)) << "seed " << seed;
      }
    }
  }
}

TEST(LazyParallelTest, FaultInjectionMidEpochIsCleanAndUntorn) {
  // Deterministic fault sweep: the coordinator reconciles worker fuel at
  // epoch barriers, so an injected budget fault lands mid-epoch from the
  // workers' perspective. Every tripped run must unwind with
  // kResourceExhausted, export no snapshot (no torn tables), and — the
  // hang check — actually return; untripped runs must stay correct.
  for (std::uint32_t seed : {3u, 7u, 11u}) {
    InclusionQuery q = MakeInclusion(seed);
    StatusOr<EmptinessOutcome> reference = LazyEmptiness(q.spec, nullptr);
    ASSERT_TRUE(reference.ok()) << "seed " << seed;
    for (std::uint64_t fail_at = 1; fail_at <= 40; fail_at += 3) {
      Budget budget;
      budget.set_fail_at_checkpoint(fail_at);
      LazySnapshot snapshot;
      LazyOptions options;
      options.threads = 4;
      options.budget = &budget;
      options.export_snapshot = &snapshot;
      StatusOr<EmptinessOutcome> out = LazyEmptiness(q.spec, nullptr, options);
      if (budget.exhausted()) {
        EXPECT_FALSE(out.ok()) << "seed " << seed << " fail_at " << fail_at;
        EXPECT_EQ(out.status().code(), StatusCode::kResourceExhausted)
            << "seed " << seed << " fail_at " << fail_at << ": "
            << out.status().ToString();
        EXPECT_FALSE(snapshot.complete)
            << "seed " << seed << " fail_at " << fail_at;
        for (const LazySnapshot::DetTable& table : snapshot.det_tables) {
          EXPECT_TRUE(table.pool.empty())
              << "seed " << seed << " fail_at " << fail_at;
        }
      } else {
        ASSERT_TRUE(out.ok()) << "seed " << seed << " fail_at " << fail_at
                              << ": " << out.status().ToString();
        EXPECT_EQ(out->empty, reference->empty)
            << "seed " << seed << " fail_at " << fail_at;
        EXPECT_TRUE(snapshot.complete);
      }
    }
  }
}

TEST(LazyParallelTest, BudgetExhaustionReconcilesAtBarriers) {
  int tripped = 0;
  for (std::uint32_t seed = 1; seed <= 20; ++seed) {
    InclusionQuery q = MakeInclusion(seed);
    Budget budget;
    budget.set_max_steps(1);
    LazyOptions options;
    options.threads = 4;
    options.budget = &budget;
    StatusOr<EmptinessOutcome> out = LazyEmptiness(q.spec, nullptr, options);
    if (!budget.exhausted()) {
      EXPECT_TRUE(out.ok()) << "seed " << seed;
      continue;
    }
    ++tripped;
    EXPECT_FALSE(out.ok()) << "seed " << seed;
    EXPECT_EQ(out.status().code(), StatusCode::kResourceExhausted)
        << "seed " << seed << ": " << out.status().ToString();
  }
  EXPECT_GT(tripped, 0);
}

TEST(LazyParallelTest, StateCapsFailSoftWithResourceExhausted) {
  InclusionQuery q = MakeInclusion(7);
  for (int threads : {2, 8}) {
    {
      LazyOptions options;
      options.threads = threads;
      options.max_configs = 1;
      StatusOr<EmptinessOutcome> out = LazyEmptiness(q.spec, nullptr, options);
      ASSERT_FALSE(out.ok()) << "threads " << threads;
      EXPECT_EQ(out.status().code(), StatusCode::kResourceExhausted);
    }
    {
      LazyOptions options;
      options.threads = threads;
      options.max_h_configs = 2;
      StatusOr<EmptinessOutcome> out = LazyEmptiness(q.spec, nullptr, options);
      ASSERT_FALSE(out.ok()) << "threads " << threads;
      EXPECT_EQ(out.status().code(), StatusCode::kResourceExhausted);
    }
  }
}

TEST(LazyParallelTest, OversizedThreadRequestIsClamped) {
  // threads is clamped to [1, 64]; a huge ask must still run correctly.
  InclusionQuery q = MakeInclusion(5);
  StatusOr<EmptinessOutcome> sequential = LazyEmptiness(q.spec, nullptr);
  ASSERT_TRUE(sequential.ok());
  LazyOptions options;
  options.threads = 1 << 20;
  StatusOr<EmptinessOutcome> parallel = LazyEmptiness(q.spec, nullptr, options);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  EXPECT_EQ(parallel->empty, sequential->empty);
}

}  // namespace
}  // namespace xtc
