// Malformed-input property tests: the recursive-descent parsers (regex,
// term, XML) must reject adversarial input — unbounded nesting, truncation,
// garbage bytes — with a Status error, never a crash, abort, or native
// stack overflow.

#include <gtest/gtest.h>

#include <random>
#include <string>

#include "src/base/arena.h"
#include "src/fa/regex.h"
#include "src/tree/codec.h"
#include "src/tree/tree.h"

namespace xtc {
namespace {

TEST(MalformedRegexTest, DeeplyNestedParensRejected) {
  // 100k nesting levels would overflow the stack without the depth fuel.
  std::string deep(100000, '(');
  deep += "a";
  deep.append(100000, ')');
  Alphabet alphabet;
  StatusOr<RegexPtr> re = ParseRegex(deep, &alphabet);
  ASSERT_FALSE(re.ok());
  EXPECT_EQ(re.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(re.status().message().find("depth"), std::string::npos);
}

TEST(MalformedRegexTest, ModerateNestingStillParses) {
  std::string ok(100, '(');
  ok += "a";
  ok.append(100, ')');
  Alphabet alphabet;
  EXPECT_TRUE(ParseRegex(ok, &alphabet).ok());
}

TEST(MalformedRegexTest, TruncatedAndGarbageInputsFailSoftly) {
  Alphabet alphabet;
  for (const char* bad : {"(a", "a)", "(((", "*", "a**)", "((a)", "&",
                          "a & b", "\x01\x02"}) {
    StatusOr<RegexPtr> re = ParseRegex(bad, &alphabet);
    EXPECT_FALSE(re.ok()) << "accepted: " << bad;
    EXPECT_EQ(re.status().code(), StatusCode::kInvalidArgument) << bad;
  }
}

TEST(MalformedTermTest, DeeplyNestedTermRejected) {
  std::string deep;
  for (int i = 0; i < 100000; ++i) deep += "a(";
  deep += "b";
  deep.append(100000, ')');
  Alphabet alphabet;
  Arena arena;
  TreeBuilder builder(&arena);
  StatusOr<Node*> t = ParseTerm(deep, &alphabet, &builder);
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(t.status().message().find("depth"), std::string::npos);
}

TEST(MalformedTermTest, ModerateNestingStillParses) {
  std::string ok;
  for (int i = 0; i < 100; ++i) ok += "a(";
  ok += "b";
  ok.append(100, ')');
  Alphabet alphabet;
  Arena arena;
  TreeBuilder builder(&arena);
  EXPECT_TRUE(ParseTerm(ok, &alphabet, &builder).ok());
}

TEST(MalformedTermTest, TruncatedAndGarbageInputsFailSoftly) {
  Alphabet alphabet;
  Arena arena;
  TreeBuilder builder(&arena);
  for (const char* bad : {"", "(", ")", "a(b", "a(b))", "a b", "(a)", "a(",
                          "\xff\xfe"}) {
    StatusOr<Node*> t = ParseTerm(bad, &alphabet, &builder);
    EXPECT_FALSE(t.ok()) << "accepted: " << bad;
    EXPECT_EQ(t.status().code(), StatusCode::kInvalidArgument) << bad;
  }
}

TEST(MalformedXmlTest, DeeplyNestedElementsRejected) {
  std::string deep;
  for (int i = 0; i < 100000; ++i) deep += "<a>";
  deep += "<b/>";
  for (int i = 0; i < 100000; ++i) deep += "</a>";
  Alphabet alphabet;
  Arena arena;
  TreeBuilder builder(&arena);
  StatusOr<Node*> t = ParseXml(deep, &alphabet, &builder);
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(t.status().message().find("depth"), std::string::npos);
}

TEST(MalformedXmlTest, ModerateNestingStillParses) {
  std::string ok;
  for (int i = 0; i < 100; ++i) ok += "<a>";
  ok += "<b/>";
  for (int i = 0; i < 100; ++i) ok += "</a>";
  Alphabet alphabet;
  Arena arena;
  TreeBuilder builder(&arena);
  EXPECT_TRUE(ParseXml(ok, &alphabet, &builder).ok());
}

TEST(MalformedXmlTest, TruncatedAndGarbageInputsFailSoftly) {
  Alphabet alphabet;
  Arena arena;
  TreeBuilder builder(&arena);
  for (const char* bad :
       {"", "<", "<a>", "<a></b>", "<a><b/>", "</a>", "<a/><b/>", "<a",
        "<a/", "<a b='c'/>", "plain text", "<a>text</a>"}) {
    StatusOr<Node*> t = ParseXml(bad, &alphabet, &builder);
    EXPECT_FALSE(t.ok()) << "accepted: " << bad;
    EXPECT_EQ(t.status().code(), StatusCode::kInvalidArgument) << bad;
  }
}

// Regression: both tree parsers must reject input that continues past the
// root — the first well-formed prefix is not an accepting parse. The wire
// protocol relies on this (a request's `tree`/`doc` field is exactly one
// document), and the streaming reader implements the same rule, so the
// parsers and the reader must agree (tests/stream_test.cc holds the
// reader's half of the contract).
TEST(MalformedTermTest, TrailingGarbageAfterRootRejected) {
  Alphabet alphabet;
  Arena arena;
  TreeBuilder builder(&arena);
  for (const char* bad : {"a b", "a(b) c", "a(b))", "a(b)(", "a(b)x(y)"}) {
    StatusOr<Node*> t = ParseTerm(bad, &alphabet, &builder);
    ASSERT_FALSE(t.ok()) << "accepted: " << bad;
    EXPECT_EQ(t.status().code(), StatusCode::kInvalidArgument) << bad;
    EXPECT_NE(t.status().message().find("trailing"), std::string::npos)
        << bad << ": " << t.status().ToString();
  }
  // Trailing whitespace alone is fine.
  EXPECT_TRUE(ParseTerm("a(b)  \n", &alphabet, &builder).ok());
}

TEST(MalformedXmlTest, TrailingGarbageAfterRootRejected) {
  Alphabet alphabet;
  Arena arena;
  TreeBuilder builder(&arena);
  for (const char* bad :
       {"<a/><b/>", "<a></a>x", "<a/></a>", "<a/><", "<a></a><a></a>"}) {
    StatusOr<Node*> t = ParseXml(bad, &alphabet, &builder);
    ASSERT_FALSE(t.ok()) << "accepted: " << bad;
    EXPECT_EQ(t.status().code(), StatusCode::kInvalidArgument) << bad;
    EXPECT_NE(t.status().message().find("trailing"), std::string::npos)
        << bad << ": " << t.status().ToString();
  }
  EXPECT_TRUE(ParseXml("<a/>  \n", &alphabet, &builder).ok());
}

TEST(MalformedXmlTest, TruncatedOpenBracketAfterChildFailsCleanly) {
  // Regression guard for the shared tokenizer contract: an unfinished tag
  // opener right after a complete child must be a clean error (not an
  // out-of-range read) in both the DOM parser and the streaming reader.
  Alphabet alphabet;
  Arena arena;
  TreeBuilder builder(&arena);
  StatusOr<Node*> t = ParseXml("<a><", &alphabet, &builder);
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kInvalidArgument);
}

// Deterministic fuzz: random byte soup over the parsers' own alphabets must
// always produce a verdict (parse or Status error), never a crash. Seeded
// generator — failures reproduce.
TEST(MalformedInputFuzzTest, RandomInputsNeverCrash) {
  std::mt19937 rng(0xc0ffee);
  const std::string regex_chars = "ab()|*+?% ,";
  const std::string term_chars = "ab() \t";
  const std::string xml_chars = "ab<>/ ";
  auto random_string = [&](const std::string& chars, int max_len) {
    std::uniform_int_distribution<int> len_dist(0, max_len);
    std::uniform_int_distribution<std::size_t> char_dist(0, chars.size() - 1);
    std::string s;
    int len = len_dist(rng);
    for (int i = 0; i < len; ++i) s += chars[char_dist(rng)];
    return s;
  };
  for (int iter = 0; iter < 500; ++iter) {
    Alphabet alphabet;
    Arena arena;
    TreeBuilder builder(&arena);
    // Verdict unused: the property is "returns, with ok() or an error".
    (void)ParseRegex(random_string(regex_chars, 64), &alphabet);
    (void)ParseTerm(random_string(term_chars, 64), &alphabet, &builder);
    (void)ParseXml(random_string(xml_chars, 64), &alphabet, &builder);
  }
}

}  // namespace
}  // namespace xtc
