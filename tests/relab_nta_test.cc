// The NTA-schema variant of Theorem 20: input given as an arbitrary
// NTA(NFA), output determinized+completed to a DTAc first (the exponential
// step the EXPTIME cells of Table 1 charge), then the Lemma 19 /
// #-elimination / product pipeline.

#include <gtest/gtest.h>

#include "src/core/relab.h"
#include "src/nta/analysis.h"
#include "src/nta/determinize.h"
#include "src/nta/product.h"
#include "src/workload/families.h"

namespace xtc {
namespace {

TEST(RelabNtaTest, NondeterministicSchemasViaDeterminization) {
  // Input language: the union of two DTD automata (genuinely
  // nondeterministic as an NTA); output: the relabeled version, also as a
  // union, determinized to a DTAc.
  PaperExample ex = RelabFamily(2);  // r -> a a, relabel a -> b, out r -> b b
  Alphabet* alphabet = ex.alphabet.get();
  // A second input variant: r -> a a a, with output r -> b b b.
  Dtd din2(alphabet, *alphabet->Find("r"));
  ASSERT_TRUE(din2.SetRule("r", "a a a").ok());
  Dtd dout2(alphabet, *alphabet->Find("r"));
  ASSERT_TRUE(dout2.SetRule("r", "b b b").ok());

  Nta ain = DisjointUnion(Nta::FromDtd(*ex.din), Nta::FromDtd(din2));
  Nta aout_union = DisjointUnion(Nta::FromDtd(*ex.dout), Nta::FromDtd(dout2));
  StatusOr<Nta> aout_det = DeterminizeToDtac(aout_union, 4096);
  ASSERT_TRUE(aout_det.ok()) << aout_det.status().ToString();
  ASSERT_TRUE(IsBottomUpDeterministic(*aout_det));
  ASSERT_TRUE(IsComplete(*aout_det));

  StatusOr<TypecheckResult> r =
      TypecheckDelRelabNta(*ex.transducer, ain, *aout_det);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->typechecks);

  // Remove the three-b alternative from the output: the r(a a a) inputs now
  // violate, so the instance fails.
  StatusOr<Nta> tight = DeterminizeToDtac(Nta::FromDtd(*ex.dout), 4096);
  ASSERT_TRUE(tight.ok());
  StatusOr<TypecheckResult> r2 =
      TypecheckDelRelabNta(*ex.transducer, ain, *tight);
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(r2->typechecks);
}

TEST(RelabNtaTest, OutputLanguageThroughNondeterministicInput) {
  // L(B_in) for a nondeterministic input automaton: the filter transducer
  // over the union of two section DTDs.
  PaperExample ex = FilterFamily(2);
  Nta ain = DisjointUnion(Nta::FromDtd(*ex.din), Nta::FromDtd(*ex.din));
  const int hash = ex.alphabet->size();
  StatusOr<Nta> bin = OutputLanguageNta(*ex.transducer, ain, hash);
  ASSERT_TRUE(bin.ok()) << bin.status().ToString();
  EXPECT_FALSE(IsEmptyLanguage(*bin));
  // Doubling the input automaton must not change the output language's
  // emptiness or the typechecking verdict.
  StatusOr<Nta> aout =
      DeterminizeToDtac(Nta::FromDtd(*ex.dout), 4096);
  ASSERT_TRUE(aout.ok());
  StatusOr<TypecheckResult> r =
      TypecheckDelRelabNta(*ex.transducer, ain, *aout);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->typechecks);
}

}  // namespace
}  // namespace xtc
