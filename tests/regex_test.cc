#include "src/fa/regex.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/fa/dfa.h"

namespace xtc {
namespace {

struct Case {
  const char* pattern;
  std::vector<std::vector<int>> accepted;
  std::vector<std::vector<int>> rejected;
};

class RegexLanguageTest : public ::testing::TestWithParam<Case> {};

TEST_P(RegexLanguageTest, GlushkovMatchesExpectedWords) {
  Alphabet alphabet;
  alphabet.Intern("a");
  alphabet.Intern("b");
  alphabet.Intern("c");
  StatusOr<RegexPtr> re = ParseRegex(GetParam().pattern, &alphabet);
  ASSERT_TRUE(re.ok()) << re.status().ToString();
  Nfa nfa = RegexToNfa(**re, 3);
  for (const auto& w : GetParam().accepted) {
    EXPECT_TRUE(nfa.Accepts(w)) << GetParam().pattern;
  }
  for (const auto& w : GetParam().rejected) {
    EXPECT_FALSE(nfa.Accepts(w)) << GetParam().pattern;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RegexLanguageTest,
    ::testing::Values(
        Case{"a", {{0}}, {{}, {1}, {0, 0}}},
        Case{"%", {{}}, {{0}}},
        Case{"a b c", {{0, 1, 2}}, {{0, 1}, {0, 2, 1}}},
        Case{"a | b", {{0}, {1}}, {{2}, {}}},
        Case{"a*", {{}, {0}, {0, 0, 0}}, {{1}}},
        Case{"a+", {{0}, {0, 0}}, {{}, {1}}},
        Case{"a?", {{}, {0}}, {{0, 0}}},
        Case{"(a | b)* c", {{2}, {0, 2}, {1, 0, 2}}, {{0}, {2, 2}}},
        Case{"a (b | %) a", {{0, 0}, {0, 1, 0}}, {{0, 1, 1, 0}}},
        Case{"(a b)+ | c", {{0, 1}, {0, 1, 0, 1}, {2}}, {{}, {0}, {0, 1, 2}}},
        // The paper's book DTD rule shape.
        Case{"a b+ c+", {{0, 1, 2}, {0, 1, 1, 2, 2}}, {{0, 2}, {1, 2}}}));

TEST(RegexTest, ParseErrors) {
  Alphabet alphabet;
  EXPECT_FALSE(ParseRegex("(a", &alphabet).ok());
  EXPECT_FALSE(ParseRegex("a)", &alphabet).ok());
  EXPECT_FALSE(ParseRegex("*", &alphabet).ok());
}

TEST(RegexTest, RoundTripThroughToString) {
  Alphabet alphabet;
  alphabet.Intern("a");
  alphabet.Intern("b");
  for (const char* pattern :
       {"a b+ c+", "(a | b)* c", "a (b | %) a", "a? b*"}) {
    StatusOr<RegexPtr> re = ParseRegex(pattern, &alphabet);
    ASSERT_TRUE(re.ok());
    std::string printed = RegexToString(**re, alphabet);
    StatusOr<RegexPtr> re2 = ParseRegex(printed, &alphabet);
    ASSERT_TRUE(re2.ok()) << printed;
    // Language equality via subset construction.
    Dfa d1 = Dfa::FromNfa(RegexToNfa(**re, alphabet.size()));
    Dfa d2 = Dfa::FromNfa(RegexToNfa(**re2, alphabet.size()));
    EXPECT_TRUE(d1.EquivalentTo(d2)) << pattern << " vs " << printed;
  }
}

TEST(RegexTest, OneUnambiguousDetection) {
  Alphabet alphabet;
  alphabet.Intern("a");
  alphabet.Intern("b");
  auto check = [&](const char* pattern) {
    StatusOr<RegexPtr> re = ParseRegex(pattern, &alphabet);
    EXPECT_TRUE(re.ok());
    return RegexIsOneUnambiguous(**re, alphabet.size());
  };
  EXPECT_TRUE(check("a b+"));
  EXPECT_TRUE(check("(a|b)*"));
  // The classic non-one-unambiguous expression (a|b)* a.
  EXPECT_FALSE(check("(a|b)* a"));
}

TEST(RegexTest, EmptySetBehaves) {
  RegexPtr empty = Regex::EmptySet();
  Nfa n = RegexToNfa(*empty, 2);
  EXPECT_TRUE(n.IsEmpty());
  // Concatenation with the empty set is empty.
  Nfa n2 = RegexToNfa(*Regex::Concat({Regex::Sym(0), empty}), 2);
  EXPECT_TRUE(n2.IsEmpty());
  // Star of the empty set is {epsilon}.
  Nfa n3 = RegexToNfa(*Regex::Star(empty), 2);
  EXPECT_TRUE(n3.Accepts(std::vector<int>{}));
  EXPECT_FALSE(n3.Accepts(std::vector<int>{0}));
}

TEST(RegexTest, SizeAndSymbols) {
  Alphabet alphabet;
  alphabet.Intern("a");
  alphabet.Intern("b");
  alphabet.Intern("c");
  StatusOr<RegexPtr> re = ParseRegex("a b+ | c", &alphabet);
  ASSERT_TRUE(re.ok());
  EXPECT_EQ(RegexSize(**re), 6);  // alt, concat, a, plus, b, c
  std::vector<bool> used(3, false);
  RegexSymbols(**re, &used);
  EXPECT_TRUE(used[0]);
  EXPECT_TRUE(used[1]);
  EXPECT_TRUE(used[2]);
}

}  // namespace
}  // namespace xtc
