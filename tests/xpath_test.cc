#include "src/xpath/parser.h"

#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/paper_examples.h"
#include "src/td/compile_selectors.h"
#include "src/td/exec.h"
#include "src/tree/codec.h"
#include "src/workload/generators.h"
#include "src/xpath/eval.h"
#include "src/xpath/to_dfa.h"

namespace xtc {
namespace {

class XPathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (const char* s : {"a", "b", "c", "d", "e"}) alphabet_.Intern(s);
  }

  XPathPatternPtr Pattern(const char* text) {
    StatusOr<XPathPatternPtr> p = ParseXPath(text, &alphabet_);
    EXPECT_TRUE(p.ok()) << p.status().ToString();
    return *p;
  }

  Node* Tree(const char* term) {
    StatusOr<Node*> t = ParseTerm(term, &alphabet_, &builder_);
    EXPECT_TRUE(t.ok());
    return *t;
  }

  std::vector<std::string> Select(const char* pattern, const char* term) {
    Node* t = Tree(term);
    std::vector<std::string> out;
    for (const Node* n : EvalXPath(*Pattern(pattern), t)) {
      out.push_back(ToTermString(n, alphabet_));
    }
    return out;
  }

  Alphabet alphabet_;
  Arena arena_;
  TreeBuilder builder_{&arena_};
};

TEST_F(XPathTest, ParserAcceptsThePaperExample) {
  // Definition 21's example pattern.
  XPathPatternPtr p = Pattern("./(a|b)//c[.//e]/*");
  XPathFeatures f = FeaturesOf(*p);
  EXPECT_TRUE(f.descendant);
  EXPECT_TRUE(f.disjunction);
  EXPECT_TRUE(f.filter);
  EXPECT_TRUE(f.wildcard);
  std::string printed = PatternToString(*p, alphabet_);
  StatusOr<XPathPatternPtr> p2 = ParseXPath(printed, &alphabet_);
  EXPECT_TRUE(p2.ok()) << printed;
}

TEST_F(XPathTest, ParserErrors) {
  EXPECT_FALSE(ParseXPath("a/b", &alphabet_).ok());     // must start with .
  EXPECT_FALSE(ParseXPath("./a[", &alphabet_).ok());
  EXPECT_FALSE(ParseXPath("./a[b]", &alphabet_).ok());  // filter is a pattern
  EXPECT_FALSE(ParseXPath("./(a", &alphabet_).ok());
}

TEST_F(XPathTest, ChildAxisSelectsChildrenOnly) {
  EXPECT_EQ(Select("./a", "c(a(a) b a)"),
            (std::vector<std::string>{"a(a)", "a"}));
  EXPECT_EQ(Select("./a/a", "c(a(a) b a)"),
            (std::vector<std::string>{"a"}));
  EXPECT_TRUE(Select("./d", "c(a b)").empty());
}

TEST_F(XPathTest, DescendantAxisSelectsAllDepths) {
  EXPECT_EQ(Select(".//a", "c(a(a) b(a))"),
            (std::vector<std::string>{"a(a)", "a", "a"}));
  // The context node itself is never selected.
  EXPECT_EQ(Select(".//c", "c(c)"), (std::vector<std::string>{"c"}));
}

TEST_F(XPathTest, WildcardAndDisjunction) {
  EXPECT_EQ(Select("./*", "c(a b)"), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(Select("./(a|b)", "c(a b d)"),
            (std::vector<std::string>{"a", "b"}));
}

TEST_F(XPathTest, FiltersCheckSubtreeExistence) {
  EXPECT_EQ(Select("./a[./b]", "c(a(b) a(d))"),
            (std::vector<std::string>{"a(b)"}));
  EXPECT_EQ(Select("./a[.//e]", "c(a(b(e)) a(e) a(d))"),
            (std::vector<std::string>{"a(b(e))", "a(e)"}));
}

TEST_F(XPathTest, MixedStepsMatchExpectedNodes) {
  // .//b/a: a-children of any b descendant.
  EXPECT_EQ(Select(".//b/a", "c(b(a) d(b(a(e))))"),
            (std::vector<std::string>{"a", "a(e)"}));
}

TEST_F(XPathTest, DocumentOrderIsPreorder) {
  EXPECT_EQ(Select(".//a", "c(b(a) a(a))"),
            (std::vector<std::string>{"a", "a(a)", "a"}));
}

TEST_F(XPathTest, ToDfaRejectsFilters) {
  EXPECT_FALSE(XPathToDfa(*Pattern("./a[./b]"), alphabet_.size()).ok());
}

TEST_F(XPathTest, ChildOnlyPatternClassification) {
  EXPECT_TRUE(IsChildOnlyPattern(*Pattern("./a/*/b")));
  EXPECT_FALSE(IsChildOnlyPattern(*Pattern(".//a")));
  EXPECT_FALSE(IsChildOnlyPattern(*Pattern("./(a|b)")));
  EXPECT_FALSE(IsChildOnlyPattern(*Pattern("./a[./b]")));
}

// Property: the compiled path DFA selects exactly the nodes the direct
// semantics selects, on random trees, for filter-free patterns.
class XPathDfaEquivalenceTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(XPathDfaEquivalenceTest, DfaSelectionMatchesEval) {
  Alphabet alphabet;
  for (const char* s : {"a", "b", "c"}) alphabet.Intern(s);
  StatusOr<XPathPatternPtr> p = ParseXPath(GetParam(), &alphabet);
  ASSERT_TRUE(p.ok());
  StatusOr<Dfa> dfa = XPathToDfa(**p, alphabet.size());
  ASSERT_TRUE(dfa.ok()) << dfa.status().ToString();
  std::mt19937 rng(12345);
  Arena arena;
  TreeBuilder builder(&arena);
  for (int trial = 0; trial < 40; ++trial) {
    Node* t = RandomTree(&rng, alphabet.size(), 4, 3, &builder);
    std::vector<const Node*> direct = EvalXPath(**p, t);
    std::vector<const Node*> via_dfa = EvalDfaSelector(*dfa, t);
    EXPECT_EQ(direct, via_dfa)
        << GetParam() << " on " << ToTermString(t, alphabet);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, XPathDfaEquivalenceTest,
                         ::testing::Values("./a", "./a/b", "./*/a", ".//a",
                                           ".//a/b", "./a//b", ".//*",
                                           "./(a|b)", ".//(a|b)/c",
                                           "./a/*//b"));

// Property: compiling selectors away preserves the transformation.
class CompileSelectorsTest : public ::testing::TestWithParam<const char*> {};

TEST_P(CompileSelectorsTest, CompiledTransducerIsEquivalent) {
  Alphabet alphabet;
  for (const char* s : {"a", "b", "c"}) alphabet.Intern(s);
  Transducer t(&alphabet);
  t.AddState("q0");
  t.AddState("q");
  t.SetInitial(0);
  std::string rhs = std::string("c(<q, ") + GetParam() + ">)";
  ASSERT_TRUE(t.SetRuleFromString("q0", "a", rhs).ok());
  ASSERT_TRUE(t.SetRuleFromString("q0", "b", "b").ok());
  ASSERT_TRUE(t.SetRuleFromString("q", "a", "a").ok());
  ASSERT_TRUE(t.SetRuleFromString("q", "b", "b(q)").ok());
  StatusOr<Transducer> compiled = CompileSelectors(t);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  EXPECT_FALSE(compiled->HasSelectors());
  std::mt19937 rng(99);
  Arena arena;
  TreeBuilder builder(&arena);
  for (int trial = 0; trial < 40; ++trial) {
    Node* input = RandomTree(&rng, alphabet.size(), 4, 3, &builder);
    // Force the root to 'a' so the initial rule fires.
    Node* root = builder.Make(*alphabet.Find("a"), input->Children());
    Node* out1 = Apply(t, root, &builder);
    Node* out2 = Apply(*compiled, root, &builder);
    ASSERT_NE(out1, nullptr);
    ASSERT_NE(out2, nullptr);
    EXPECT_TRUE(TreeEqual(out1, out2)) << GetParam() << " on "
                                       << ToTermString(root, alphabet);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CompileSelectorsTest,
                         ::testing::Values("./a", "./b/a", ".//a", ".//b/a",
                                           "./*/a", ".//*", "./(a|b)",
                                           ".//(a|b)"));

TEST_F(XPathTest, Example22CompilesToExample10Behaviour) {
  PaperExample with_xpath = MakeExample22();
  PaperExample with_deletion = MakeBookExample(false);
  StatusOr<Transducer> compiled = CompileSelectors(*with_xpath.transducer);
  ASSERT_TRUE(compiled.ok());
  Arena arena;
  TreeBuilder builder(&arena);
  StatusOr<Node*> doc = ParseTerm(
      "book(title author chapter(title intro section(title paragraph "
      "section(title paragraph)) section(title paragraph)))",
      with_xpath.alphabet.get(), &builder);
  ASSERT_TRUE(doc.ok());
  Node* out_compiled = Apply(*compiled, *doc, &builder);
  Node* out_direct = Apply(*with_xpath.transducer, *doc, &builder);
  ASSERT_NE(out_compiled, nullptr);
  EXPECT_TRUE(TreeEqual(out_compiled, out_direct));
  // And it behaves exactly like Example 10's deleting ToC transducer.
  StatusOr<Node*> doc2 =
      ParseTerm(ToTermString(*doc, *with_xpath.alphabet),
                with_deletion.alphabet.get(), &builder);
  ASSERT_TRUE(doc2.ok());
  Node* out_deleting = Apply(*with_deletion.transducer, *doc2, &builder);
  EXPECT_EQ(ToTermString(out_deleting, *with_deletion.alphabet),
            ToTermString(out_direct, *with_xpath.alphabet));
}

}  // namespace
}  // namespace xtc
