#include "src/core/approximate.h"

#include <gtest/gtest.h>

#include "src/core/brute_force.h"
#include "src/core/paper_examples.h"
#include "src/core/trac.h"
#include "src/td/widths.h"
#include "src/workload/families.h"
#include "src/workload/generators.h"

namespace xtc {
namespace {

TEST(ApproximateTest, ProvesLooseSchemasSafe) {
  // WidthFamily's output schema (r -> b*, b -> b*) is loose enough for the
  // star-over-approximation to succeed.
  PaperExample ex = WidthFamily(2, 1);
  StatusOr<ApproximateResult> r =
      TypecheckApproximate(*ex.transducer, *ex.din, *ex.dout);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->verdict, ApproximateVerdict::kTypechecks);
}

TEST(ApproximateTest, IsIncompleteOnTheBookExample) {
  // The ToC instance typechecks (complete engines prove it) but the
  // approximation loses the title-count structure: kUnknown. This is the
  // complete-vs-incomplete gap of the paper's introduction.
  PaperExample ex = MakeBookExample(false);
  StatusOr<TypecheckResult> complete =
      TypecheckTrac(*ex.transducer, *ex.din, *ex.dout);
  ASSERT_TRUE(complete.ok());
  ASSERT_TRUE(complete->typechecks);
  StatusOr<ApproximateResult> approx =
      TypecheckApproximate(*ex.transducer, *ex.din, *ex.dout);
  ASSERT_TRUE(approx.ok());
  EXPECT_EQ(approx->verdict, ApproximateVerdict::kUnknown);
}

TEST(ApproximateTest, FlagsGenuineViolations) {
  PaperExample ex = FailingFilterFamily(2);
  StatusOr<ApproximateResult> r =
      TypecheckApproximate(*ex.transducer, *ex.din, *ex.dout);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->verdict, ApproximateVerdict::kUnknown);
}

TEST(ApproximateTest, RootMismatchIsUnknown) {
  PaperExample ex = MakeBookExample(false);
  Transducer t(ex.alphabet.get());
  t.AddState("q0");
  t.SetInitial(0);
  ASSERT_TRUE(t.SetRuleFromString("q0", "book", "title").ok());
  StatusOr<ApproximateResult> r = TypecheckApproximate(t, *ex.din, *ex.dout);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->verdict, ApproximateVerdict::kUnknown);
}

// Soundness property: whenever the approximation says kTypechecks, the
// complete engine (or the bounded oracle) must agree.
class ApproximateSoundnessTest : public ::testing::TestWithParam<int> {};

TEST_P(ApproximateSoundnessTest, NeverClaimsSafetyWrongly) {
  RandomOptions opts;
  opts.num_symbols = 3;
  opts.num_states = 3;
  PaperExample ex =
      RandomInstance(static_cast<std::uint32_t>(GetParam()), opts, false);
  StatusOr<ApproximateResult> approx =
      TypecheckApproximate(*ex.transducer, *ex.din, *ex.dout);
  if (!approx.ok()) GTEST_SKIP() << approx.status().ToString();
  if (approx->verdict != ApproximateVerdict::kTypechecks) GTEST_SKIP();
  // Sound claim: no counterexample may exist.
  WidthAnalysis w = AnalyzeWidths(*ex.transducer);
  if (w.dpw_bounded && w.copying_width * w.deletion_path_width <= 6) {
    TypecheckOptions topts;
    topts.want_counterexample = false;
    StatusOr<TypecheckResult> complete =
        TypecheckTrac(*ex.transducer, *ex.din, *ex.dout, topts);
    ASSERT_TRUE(complete.ok());
    EXPECT_TRUE(complete->typechecks) << GetParam();
  } else {
    BruteForceOptions bf;
    bf.max_depth = 4;
    bf.max_width = 3;
    bf.max_trees = 20000;
    StatusOr<TypecheckResult> brute =
        TypecheckBruteForce(*ex.transducer, *ex.din, *ex.dout, bf);
    ASSERT_TRUE(brute.ok());
    EXPECT_TRUE(brute->typechecks) << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ApproximateSoundnessTest,
                         ::testing::Range(0, 80));

}  // namespace
}  // namespace xtc
