#include "src/base/status.h"

#include <string>

#include <gtest/gtest.h>

namespace xtc {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesMessage) {
  Status s = InvalidArgumentError("bad regex");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad regex");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad regex");
}

TEST(StatusTest, AllConstructorsSetCodes) {
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(ResourceExhaustedError("x").code(),
            StatusCode::kResourceExhausted);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = NotFoundError("missing");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, WorksWithMoveOnlyLikeTypes) {
  StatusOr<std::string> v = std::string("hello");
  ASSERT_TRUE(v.ok());
  std::string s = *std::move(v);
  EXPECT_EQ(s, "hello");
}

}  // namespace
}  // namespace xtc
