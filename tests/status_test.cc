#include "src/base/status.h"

#include <string>

#include <gtest/gtest.h>

namespace xtc {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesMessage) {
  Status s = InvalidArgumentError("bad regex");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad regex");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad regex");
}

TEST(StatusTest, AllConstructorsSetCodes) {
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(ResourceExhaustedError("x").code(),
            StatusCode::kResourceExhausted);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = NotFoundError("missing");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, WorksWithMoveOnlyLikeTypes) {
  StatusOr<std::string> v = std::string("hello");
  ASSERT_TRUE(v.ok());
  std::string s = *std::move(v);
  EXPECT_EQ(s, "hello");
}

Status PassThrough(const Status& s, bool* reached_end) {
  XTC_RETURN_IF_ERROR(s);
  *reached_end = true;
  return Status::Ok();
}

TEST(StatusMacrosTest, ReturnIfErrorPropagatesAndPasses) {
  bool reached = false;
  EXPECT_TRUE(PassThrough(Status::Ok(), &reached).ok());
  EXPECT_TRUE(reached);
  reached = false;
  Status s = PassThrough(NotFoundError("gone"), &reached);
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_FALSE(reached);
}

StatusOr<int> Doubled(StatusOr<int> in) {
  XTC_ASSIGN_OR_RETURN(int v, std::move(in));
  return 2 * v;
}

TEST(StatusMacrosTest, AssignOrReturnUnwrapsAndPropagates) {
  StatusOr<int> ok = Doubled(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  StatusOr<int> err = Doubled(OutOfRangeError("nope"));
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kOutOfRange);
}

StatusOr<std::string> Concatenated() {
  // Two macro expansions in one function: the __LINE__-based temp names
  // must not collide.
  XTC_ASSIGN_OR_RETURN(std::string a, StatusOr<std::string>("foo"));
  XTC_ASSIGN_OR_RETURN(std::string b, StatusOr<std::string>("bar"));
  return a + b;
}

TEST(StatusMacrosTest, MultipleAssignsInOneScope) {
  StatusOr<std::string> r = Concatenated();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "foobar");
}

}  // namespace
}  // namespace xtc
