#include "src/base/arena.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

namespace xtc {
namespace {

TEST(ArenaTest, AllocatesAlignedMemory) {
  Arena arena;
  for (std::size_t align : {1u, 2u, 4u, 8u, 16u, 64u}) {
    void* p = arena.Allocate(13, align);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u);
  }
}

TEST(ArenaTest, NewConstructsObjects) {
  Arena arena;
  struct Point {
    int x;
    int y;
  };
  Point* p = arena.New<Point>();
  p->x = 3;
  p->y = 4;
  EXPECT_EQ(p->x, 3);
  EXPECT_EQ(p->y, 4);
}

TEST(ArenaTest, NewArrayIsWritable) {
  Arena arena;
  int* xs = arena.NewArray<int>(1000);
  for (int i = 0; i < 1000; ++i) xs[i] = i;
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(xs[i], i);
}

TEST(ArenaTest, LargeAllocationsSpanBlocks) {
  Arena arena;
  // Larger than one 64 KiB block.
  char* big = arena.NewArray<char>(200 * 1024);
  big[0] = 'x';
  big[200 * 1024 - 1] = 'y';
  char* small = arena.NewArray<char>(16);
  small[0] = 'z';
  EXPECT_EQ(big[0], 'x');
  EXPECT_EQ(big[200 * 1024 - 1], 'y');
  EXPECT_EQ(small[0], 'z');
}

TEST(ArenaTest, TracksBytesAllocated) {
  Arena arena;
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  arena.Allocate(100, 1);
  EXPECT_GE(arena.bytes_allocated(), 100u);
}

TEST(ArenaTest, ManySmallAllocationsSurvive) {
  Arena arena;
  std::vector<int*> ptrs;
  for (int i = 0; i < 100000; ++i) {
    int* p = arena.New<int>();
    *p = i;
    ptrs.push_back(p);
  }
  for (int i = 0; i < 100000; ++i) {
    EXPECT_EQ(*ptrs[static_cast<std::size_t>(i)], i);
  }
}

TEST(ArenaTest, MoveTransfersOwnership) {
  Arena a;
  int* p = a.New<int>();
  *p = 42;
  Arena b = std::move(a);
  EXPECT_EQ(*p, 42);
}

}  // namespace
}  // namespace xtc
