#include "src/core/hardness.h"

#include <gtest/gtest.h>

#include "src/core/brute_force.h"
#include "src/core/trac.h"
#include "src/td/compile_selectors.h"
#include "src/td/widths.h"
#include "src/xpath/parser.h"

namespace xtc {
namespace {

// A DFA over symbols {0..num_symbols-1} accepting words whose length is
// congruent to `residue` mod `modulus`.
Dfa LengthModDfa(int num_symbols, int modulus, int residue) {
  Dfa d(num_symbols);
  for (int i = 0; i < modulus; ++i) d.AddState(i == residue);
  d.SetInitial(0);
  for (int i = 0; i < modulus; ++i) {
    for (int s = 0; s < num_symbols; ++s) {
      d.SetTransition(i, s, (i + 1) % modulus);
    }
  }
  return d;
}

TEST(HardnessTest, DfaIntersectionOracle) {
  // len ≡ 0 mod 2 ∩ len ≡ 1 mod 2 is empty; mod 2 / mod 3 is not.
  std::vector<Dfa> disjoint{LengthModDfa(2, 2, 0), LengthModDfa(2, 2, 1)};
  EXPECT_TRUE(DfaIntersectionEmpty(disjoint));
  std::vector<Dfa> joint{LengthModDfa(2, 2, 0), LengthModDfa(2, 3, 0)};
  EXPECT_FALSE(DfaIntersectionEmpty(joint));
}

TEST(HardnessTest, FirstPrimes) {
  EXPECT_EQ(FirstPrimes(5), (std::vector<int>{2, 3, 5, 7, 11}));
}

TEST(HardnessTest, Theorem18ReductionIsFaithful) {
  // Over Δ = {x, y}: the instance typechecks iff the intersection is empty.
  std::vector<std::string> delta{"x", "y"};
  {
    std::vector<Dfa> dfas{LengthModDfa(2, 2, 0), LengthModDfa(2, 2, 1),
                          LengthModDfa(2, 3, 0)};
    ASSERT_TRUE(DfaIntersectionEmpty(dfas));
    PaperExample ex = MakeTheorem18Instance(dfas, delta);
    StatusOr<TypecheckResult> r =
        TypecheckTrac(*ex.transducer, *ex.din, *ex.dout);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(r->typechecks);
  }
  {
    std::vector<Dfa> dfas{LengthModDfa(2, 2, 0), LengthModDfa(2, 3, 0)};
    ASSERT_FALSE(DfaIntersectionEmpty(dfas));
    PaperExample ex = MakeTheorem18Instance(dfas, delta);
    StatusOr<TypecheckResult> r =
        TypecheckTrac(*ex.transducer, *ex.din, *ex.dout);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_FALSE(r->typechecks);
    EXPECT_TRUE(VerifyCounterexample(*ex.transducer, *ex.din, *ex.dout,
                                     r->counterexample));
  }
}

TEST(HardnessTest, Theorem18TransducerHasBoundedWidths) {
  std::vector<Dfa> dfas{LengthModDfa(1, 2, 0), LengthModDfa(1, 3, 0)};
  PaperExample ex = MakeTheorem18Instance(dfas, {"x"});
  WidthAnalysis w = AnalyzeWidths(*ex.transducer);
  EXPECT_TRUE(w.dpw_bounded);
  EXPECT_EQ(w.copying_width, 2);
}

TEST(HardnessTest, Lemma27EncodingMatchesSatisfiability) {
  // (x0 ∨ x1 ∨ x2) ∧ (¬x0 ∨ x1 ∨ ¬x2): satisfiable (e.g. x1 true).
  std::vector<CnfClause> sat{
      CnfClause{CnfLiteral{0, true}, CnfLiteral{1, true}, CnfLiteral{2, true}},
      CnfClause{CnfLiteral{0, false}, CnfLiteral{1, true},
                CnfLiteral{2, false}}};
  std::vector<Dfa> sat_dfas = Make3CnfUnaryDfas(sat, 3);
  EXPECT_FALSE(DfaIntersectionEmpty(sat_dfas));

  // x0 ∧ ¬x0 (padded to 3 literals with the same variable): unsatisfiable.
  std::vector<CnfClause> unsat{
      CnfClause{CnfLiteral{0, true}, CnfLiteral{0, true}, CnfLiteral{0, true}},
      CnfClause{CnfLiteral{0, false}, CnfLiteral{0, false},
                CnfLiteral{0, false}}};
  std::vector<Dfa> unsat_dfas = Make3CnfUnaryDfas(unsat, 1);
  EXPECT_TRUE(DfaIntersectionEmpty(unsat_dfas));
}

TEST(HardnessTest, Theorem28ReductionAgreesWithBruteForce) {
  // Unary DFAs: len ≡ 0 mod 2 and len ≡ 0 mod 3 intersect at a^0, a^6, ...
  {
    std::vector<Dfa> dfas{LengthModDfa(1, 2, 0), LengthModDfa(1, 3, 0)};
    PaperExample ex = MakeTheorem28Instance(dfas);
    StatusOr<Transducer> compiled = CompileSelectors(*ex.transducer);
    ASSERT_TRUE(compiled.ok());
    BruteForceOptions bf;
    bf.max_depth = 5;
    bf.max_width = 7;
    bf.max_trees = 200000;
    StatusOr<TypecheckResult> r =
        TypecheckBruteForce(*compiled, *ex.din, *ex.dout, bf);
    ASSERT_TRUE(r.ok());
    // Intersection nonempty (the empty word): a counterexample exists with
    // two # levels and zero a's.
    EXPECT_FALSE(r->typechecks);
    EXPECT_TRUE(
        VerifyCounterexample(*ex.transducer, *ex.din, *ex.dout,
                             r->counterexample));
  }
  {
    std::vector<Dfa> dfas{LengthModDfa(1, 2, 0), LengthModDfa(1, 2, 1)};
    ASSERT_TRUE(DfaIntersectionEmpty(dfas));
    PaperExample ex = MakeTheorem28Instance(dfas);
    StatusOr<Transducer> compiled = CompileSelectors(*ex.transducer);
    ASSERT_TRUE(compiled.ok());
    BruteForceOptions bf;
    bf.max_depth = 5;
    bf.max_width = 6;
    bf.max_trees = 100000;
    StatusOr<TypecheckResult> r =
        TypecheckBruteForce(*compiled, *ex.din, *ex.dout, bf);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->typechecks);  // no counterexample within bounds
  }
}

TEST(HardnessTest, Theorem28CompiledTransducerHasUnboundedWidth) {
  // Compiling the .//# selector away yields recursive deletion WITH
  // copying: exactly why the fragment is intractable.
  std::vector<Dfa> dfas{LengthModDfa(1, 2, 0)};
  PaperExample ex = MakeTheorem28Instance(dfas);
  StatusOr<Transducer> compiled = CompileSelectors(*ex.transducer);
  ASSERT_TRUE(compiled.ok());
  WidthAnalysis w = AnalyzeWidths(*compiled);
  EXPECT_FALSE(w.dpw_bounded);
}

TEST(HardnessTest, Lemma26PatternTransformation) {
  Alphabet alphabet;
  for (const char* s : {"a", "b", "c", "e", "x1"}) alphabet.Intern(s);
  int x1 = *alphabet.Find("x1");
  // Example 25: the selecting literals of .//a/b/((c/d)|(b/e)) are d and e.
  StatusOr<XPathPatternPtr> p =
      ParseXPath(".//a/b/((c/d)|(b/e))", &alphabet);
  ASSERT_TRUE(p.ok());
  XPathPatternPtr transformed = Lemma26Pattern(*p, x1);
  EXPECT_EQ(PatternToString(*transformed, alphabet),
            ".//a/b/(c/d/x1|b/e/x1)");
  // Descendant-axis literal gets //x1.
  StatusOr<XPathPatternPtr> q = ParseXPath(".//a", &alphabet);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(PatternToString(*Lemma26Pattern(*q, x1), alphabet), ".//a//x1");
  // Filters stay attached before the appended step.
  StatusOr<XPathPatternPtr> f = ParseXPath("./a[./b]", &alphabet);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(PatternToString(*Lemma26Pattern(*f, x1), alphabet),
            "./a[./b]/x1");
}

struct ContainmentCase {
  const char* p1;
  const char* p2;
  bool contained;
};

class Theorem28aTest : public ::testing::TestWithParam<ContainmentCase> {};

TEST_P(Theorem28aTest, ReductionAgreesWithContainmentOracle) {
  auto alphabet = std::make_shared<Alphabet>();
  for (const char* s : {"s", "a", "b", "c", "r", "x1", "x2"}) {
    alphabet->Intern(s);
  }
  // Base DTD: s → a? b?; a → c?; b → c?.
  Dtd d(alphabet.get(), *alphabet->Find("s"));
  ASSERT_TRUE(d.SetRule("s", "a? b?").ok());
  ASSERT_TRUE(d.SetRule("a", "c?").ok());
  ASSERT_TRUE(d.SetRule("b", "c?").ok());
  StatusOr<XPathPatternPtr> p1 = ParseXPath(GetParam().p1, alphabet.get());
  StatusOr<XPathPatternPtr> p2 = ParseXPath(GetParam().p2, alphabet.get());
  ASSERT_TRUE(p1.ok() && p2.ok());

  BruteForceOptions bounds;
  bounds.max_depth = 4;
  bounds.max_width = 4;
  EXPECT_EQ(XPathContainedBounded(**p1, **p2, d, bounds),
            GetParam().contained);

  PaperExample ex = MakeTheorem28aInstance(alphabet, d, *p1, *p2);
  // The reduced instance checked with the bounded-complete baseline (the
  // instance's transducer carries filters, so only execution-based
  // checking applies). Bounds cover d' entirely: depth <= 4, width <= 6.
  BruteForceOptions bf;
  bf.max_depth = 5;
  bf.max_width = 6;
  bf.max_trees = 100000;
  StatusOr<TypecheckResult> r =
      TypecheckBruteForce(*ex.transducer, *ex.din, *ex.dout, bf);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->typechecks, GetParam().contained)
      << GetParam().p1 << " vs " << GetParam().p2;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Theorem28aTest,
    ::testing::Values(ContainmentCase{"./a", "./*", true},
                      ContainmentCase{"./*", "./a", false},
                      ContainmentCase{"./a/c", ".//c", true},
                      ContainmentCase{".//c", "./a/c", false},
                      ContainmentCase{"./(a|b)", "./*", true},
                      ContainmentCase{"./a[./c]", "./a", true},
                      ContainmentCase{"./a", "./a[./c]", false},
                      ContainmentCase{".//c", ".//*", true}));

}  // namespace
}  // namespace xtc
