// Streaming subsystem tests (src/stream/): the pull-based event reader,
// the O(depth) validator, and the streaming transducer executor — plus the
// differential sweep asserting that, over generated documents of every
// shape, the streaming verdicts and outputs byte-match the DOM path.

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/base/arena.h"
#include "src/base/budget.h"
#include "src/schema/dtd.h"
#include "src/stream/doc_gen.h"
#include "src/stream/event_reader.h"
#include "src/stream/transform.h"
#include "src/stream/validate.h"
#include "src/td/exec.h"
#include "src/td/transducer.h"
#include "src/tree/codec.h"
#include "src/tree/tree.h"

namespace xtc {
namespace {

using ReadResult = XmlEventReader::ReadResult;

// Drives a whole document through a reader in chunks of `chunk_size` bytes,
// handing every event to `on_event` (which may be empty). Returns the
// reader's terminal status: OK iff the document tokenized to the end.
Status Drive(std::string_view doc, std::size_t chunk_size, Alphabet* alphabet,
             const std::function<Status(const XmlEvent&)>& on_event,
             Budget* budget = nullptr) {
  XmlEventReader::Options options;
  options.budget = budget;
  XmlEventReader reader(alphabet, options);
  std::size_t fed = 0;
  XmlEvent event;
  while (true) {
    StatusOr<ReadResult> r = reader.Next(&event);
    if (!r.ok()) return r.status();
    switch (*r) {
      case ReadResult::kEvent:
        if (on_event) {
          Status s = on_event(event);
          if (!s.ok()) return s;
        }
        break;
      case ReadResult::kNeedInput:
        if (fed < doc.size()) {
          std::size_t n = std::min(chunk_size, doc.size() - fed);
          reader.Push(doc.substr(fed, n));
          fed += n;
        } else {
          reader.FinishInput();
        }
        break;
      case ReadResult::kEndOfDocument:
        return Status::Ok();
    }
  }
}

std::vector<std::pair<XmlEventKind, std::string>> NamedEvents(
    std::string_view doc, std::size_t chunk_size) {
  Alphabet alphabet;
  std::vector<std::pair<XmlEventKind, std::string>> out;
  Status s = Drive(doc, chunk_size, &alphabet, [&](const XmlEvent& e) {
    out.emplace_back(e.kind, alphabet.Name(e.label));
    return Status::Ok();
  });
  EXPECT_TRUE(s.ok()) << s.ToString();
  return out;
}

// --- XmlEventReader -------------------------------------------------------

TEST(XmlEventReaderTest, TokenizesRegardlessOfChunkBoundaries) {
  const std::string doc = "<root><section><item/></section><item/></root>";
  const auto whole = NamedEvents(doc, doc.size());
  ASSERT_EQ(whole.size(), 8u);
  EXPECT_EQ(whole[0], std::make_pair(XmlEventKind::kStartElement,
                                     std::string("root")));
  EXPECT_EQ(whole[2], std::make_pair(XmlEventKind::kStartElement,
                                     std::string("item")));
  EXPECT_EQ(whole[3], std::make_pair(XmlEventKind::kEndElement,
                                     std::string("item")));
  EXPECT_EQ(whole[7], std::make_pair(XmlEventKind::kEndElement,
                                     std::string("root")));
  // Every chunk size — including one byte, splitting names and tags — must
  // produce the identical event sequence.
  for (std::size_t chunk : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                            std::size_t{7}, std::size_t{16}}) {
    EXPECT_EQ(NamedEvents(doc, chunk), whole) << "chunk=" << chunk;
  }
}

TEST(XmlEventReaderTest, SelfClosingYieldsStartThenEnd) {
  const auto events = NamedEvents("<a/>", 1);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].first, XmlEventKind::kStartElement);
  EXPECT_EQ(events[1].first, XmlEventKind::kEndElement);
  EXPECT_EQ(events[0].second, "a");
  EXPECT_EQ(events[1].second, "a");
}

TEST(XmlEventReaderTest, WhitespaceBetweenTagsIsSkipped) {
  const auto events = NamedEvents("  <a>\n  <b/>\t</a>  \n", 4);
  ASSERT_EQ(events.size(), 4u);
}

TEST(XmlEventReaderTest, MismatchedClosingTagFails) {
  Alphabet alphabet;
  Status s = Drive("<a><b></a></a>", 3, &alphabet, nullptr);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("mismatched closing tag"), std::string::npos)
      << s.ToString();
}

TEST(XmlEventReaderTest, TruncatedDocumentFails) {
  Alphabet alphabet;
  Status s = Drive("<a><b/>", 3, &alphabet, nullptr);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("unexpected end of input inside <a>"),
            std::string::npos)
      << s.ToString();

  Status mid_tag = Drive("<a><lon", 3, &alphabet, nullptr);
  ASSERT_FALSE(mid_tag.ok());
  EXPECT_NE(mid_tag.message().find("inside a tag"), std::string::npos);
}

TEST(XmlEventReaderTest, TrailingGarbageAfterRootFails) {
  Alphabet alphabet;
  for (const char* doc : {"<a/><b/>", "<a></a>x", "<a/> </a>"}) {
    Status s = Drive(doc, 2, &alphabet, nullptr);
    ASSERT_FALSE(s.ok()) << doc;
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << doc;
    EXPECT_NE(s.message().find("trailing characters after root element"),
              std::string::npos)
        << s.ToString();
  }
}

TEST(XmlEventReaderTest, DepthFuelRejectsPathologicalNesting) {
  std::string deep;
  for (int i = 0; i < 100000; ++i) deep += "<a>";
  Alphabet alphabet;
  Status s = Drive(deep, 4096, &alphabet, nullptr);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("depth limit"), std::string::npos);
}

TEST(XmlEventReaderTest, AttributesAndTextAreRejected) {
  Alphabet alphabet;
  for (const char* doc :
       {"<a x=\"1\"/>", "<a>text</a>", "<a><!-- c --></a>", "<>", "</>"}) {
    Status s = Drive(doc, 64, &alphabet, nullptr);
    EXPECT_FALSE(s.ok()) << doc;
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << doc;
  }
}

TEST(XmlEventReaderTest, BufferTailStaysBoundedOnHugeDocuments) {
  // Feed ~1M elements through in small chunks; the consumed-prefix
  // compaction must keep bytes_consumed growing while depth stays at the
  // document's real depth (2 here).
  Alphabet alphabet;
  XmlDocStream gen(StreamDocSpec{StreamDocSpec::Shape::kWide, 200000});
  XmlEventReader reader(&alphabet);
  XmlEvent event;
  std::string chunk;
  std::uint64_t events = 0;
  while (true) {
    StatusOr<ReadResult> r = reader.Next(&event);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    if (*r == ReadResult::kEvent) {
      ++events;
      continue;
    }
    if (*r == ReadResult::kEndOfDocument) break;
    if (gen.Next(&chunk)) {
      reader.Push(chunk);
    } else {
      reader.FinishInput();
    }
  }
  EXPECT_EQ(events, 2u * 200000);
  EXPECT_EQ(reader.max_depth(), 2);
  EXPECT_EQ(reader.bytes_consumed(), gen.bytes_emitted());
}

TEST(XmlEventReaderTest, BudgetByteCeilingSurfacesAsResourceExhausted) {
  Alphabet alphabet;
  Budget budget = Budget::WithMaxBytes(16);
  Status s = Drive("<root><item/><item/><item/></root>", 8, &alphabet,
                   nullptr, &budget);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
}

// --- Shared grammar contract ---------------------------------------------

// The reader and codec.cc's ParseXml implement the same grammar
// (src/tree/xml_grammar.h): any document one accepts, the other must.
TEST(SharedGrammarTest, ReaderAndParseXmlAgreeOnAcceptance) {
  const char* docs[] = {
      "<a/>", "<a></a>", "<a><b/><c/></a>", "  <a>  <b/>  </a>  ",
      "<a_b.c:d-e/>",
      // rejects
      "", "<a>", "</a>", "<a/><b/>", "<a></b>", "<a", "a", "<a><b></a></b>",
      "<a >< /a>",
  };
  for (const char* doc : docs) {
    Alphabet stream_alphabet;
    Status stream = Drive(doc, 3, &stream_alphabet, nullptr);
    Alphabet dom_alphabet;
    Arena arena;
    TreeBuilder builder(&arena);
    StatusOr<Node*> dom = ParseXml(doc, &dom_alphabet, &builder);
    EXPECT_EQ(stream.ok(), dom.ok())
        << "doc=\"" << doc << "\" stream=" << stream.ToString()
        << " dom=" << dom.status().ToString();
  }
}

// --- Fixtures for the schema/transducer tests ----------------------------

class StreamDocFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = alphabet_.Intern("root");
    section_ = alphabet_.Intern("section");
    item_ = alphabet_.Intern("item");
    dtd_.emplace(&alphabet_, root_);
    ASSERT_TRUE(dtd_->SetRule("root", "(section|item)*").ok());
    ASSERT_TRUE(dtd_->SetRule("section", "(section|item)*").ok());
    ASSERT_TRUE(dtd_->SetRule("item", "%").ok());
    ASSERT_TRUE(dtd_->Compile().ok());
  }

  // The identity transducer (linear: zero copy-spill).
  Transducer MakeIdentity() {
    Transducer t(&alphabet_);
    int m = t.AddState("m");
    t.SetInitial(m);
    EXPECT_TRUE(t.SetRuleFromString("m", "root", "root(m)").ok());
    EXPECT_TRUE(t.SetRuleFromString("m", "section", "section(m)").ok());
    EXPECT_TRUE(t.SetRuleFromString("m", "item", "item").ok());
    return t;
  }

  // Duplicates the translated children at the root only: output stays at
  // 2x the input (safe on deep documents, where per-section copying would
  // be exponential in depth) while still spilling a full subtree copy.
  Transducer MakeRootCopying() {
    Transducer t(&alphabet_);
    int m = t.AddState("m");
    int c = t.AddState("c");
    t.SetInitial(m);
    EXPECT_TRUE(t.SetRuleFromString("m", "root", "root(c c)").ok());
    EXPECT_TRUE(t.SetRuleFromString("c", "section", "section(c)").ok());
    EXPECT_TRUE(t.SetRuleFromString("c", "item", "item").ok());
    return t;
  }

  // Every section (and the root) duplicates its translated children:
  // exercises the byte-accounted copy-spill path.
  Transducer MakeCopying() {
    Transducer t(&alphabet_);
    int m = t.AddState("m");
    t.SetInitial(m);
    EXPECT_TRUE(t.SetRuleFromString("m", "root", "root(m m)").ok());
    EXPECT_TRUE(t.SetRuleFromString("m", "section", "section(m m)").ok());
    EXPECT_TRUE(t.SetRuleFromString("m", "item", "item").ok());
    return t;
  }

  // Streams `doc` through a validator; returns the end-of-document verdict.
  bool StreamVerdict(std::string_view doc, std::size_t chunk = 777) {
    StreamValidator validator(&*dtd_);
    Status s = Drive(doc, chunk, &alphabet_,
                     [&](const XmlEvent& e) { return validator.OnEvent(e); });
    EXPECT_TRUE(s.ok()) << s.ToString();
    return validator.AtEndOfDocument();
  }

  // Streams `doc` through a transducer; output or error status.
  StatusOr<std::string> StreamTransform(const Transducer& t,
                                        std::string_view doc,
                                        std::size_t chunk = 777) {
    std::string out;
    StringSink sink(&out);
    StatusOr<std::unique_ptr<StreamTransducer>> exec =
        StreamTransducer::Create(&t, &sink);
    if (!exec.ok()) return exec.status();
    Status s = Drive(doc, chunk, &alphabet_,
                     [&](const XmlEvent& e) { return (*exec)->OnEvent(e); });
    if (!s.ok()) return s;
    Status f = (*exec)->Finish();
    if (!f.ok()) return f;
    return out;
  }

  // The DOM verdict for the same document (same alphabet, same schema).
  bool DomVerdict(std::string_view doc) {
    Arena arena;
    TreeBuilder builder(&arena);
    StatusOr<Node*> tree = ParseXml(doc, &alphabet_, &builder);
    EXPECT_TRUE(tree.ok()) << tree.status().ToString();
    return tree.ok() && dtd_->Valid(*tree);
  }

  // The DOM transform: ToXml(Apply(...)), or an error mirroring the
  // service's Definition 5 root restriction when the output is not a tree.
  StatusOr<std::string> DomTransform(const Transducer& t,
                                     std::string_view doc) {
    Arena arena;
    TreeBuilder builder(&arena);
    StatusOr<Node*> tree = ParseXml(doc, &alphabet_, &builder);
    if (!tree.ok()) return tree.status();
    Node* out = Apply(t, *tree, &builder);
    if (out == nullptr) {
      return FailedPreconditionError(
          "transducer output at the root is not a single tree");
    }
    return ToXml(out, alphabet_);
  }

  Alphabet alphabet_;
  int root_ = -1, section_ = -1, item_ = -1;
  std::optional<Dtd> dtd_;
};

// --- StreamValidator ------------------------------------------------------

TEST_F(StreamDocFixture, AcceptsValidDocument) {
  EXPECT_TRUE(StreamVerdict("<root><section><item/></section><item/></root>"));
}

TEST_F(StreamDocFixture, RejectsWrongRootLabel) {
  EXPECT_FALSE(StreamVerdict("<section><item/></section>"));
}

TEST_F(StreamDocFixture, RejectsContentModelViolation) {
  // item must be a leaf.
  EXPECT_FALSE(StreamVerdict("<root><item><section/></item></root>"));
}

TEST_F(StreamDocFixture, RejectsUnknownLabels) {
  // "blob" interns past the schema's snapshot: range-rejected, exactly like
  // the DOM path.
  EXPECT_FALSE(StreamVerdict("<root><blob/></root>"));
}

TEST_F(StreamDocFixture, ValidatorDepthIsDocumentDepthNotSize) {
  StreamValidator validator(&*dtd_);
  std::string doc = RenderDoc({StreamDocSpec::Shape::kWide, 50000});
  Status s = Drive(doc, 4096, &alphabet_,
                   [&](const XmlEvent& e) { return validator.OnEvent(e); });
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_TRUE(validator.AtEndOfDocument());
  EXPECT_EQ(validator.peak_depth(), 2);  // root + one open child at a time
}

TEST_F(StreamDocFixture, ValidatorInjectedBudgetFaultSurfacesCleanly) {
  Budget budget;
  budget.set_fail_at_checkpoint(1);
  StreamValidator::Options options;
  options.budget = &budget;
  StreamValidator validator(&*dtd_, options);
  // > 1024 events so the gate polls at least once.
  std::string doc = RenderDoc({StreamDocSpec::Shape::kWide, 2000});
  Status s = Drive(doc, 4096, &alphabet_,
                   [&](const XmlEvent& e) { return validator.OnEvent(e); });
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
}

// --- StreamTransducer -----------------------------------------------------

TEST_F(StreamDocFixture, IdentityTransducerStreamsByteExactOutput) {
  Transducer t = MakeIdentity();
  const std::string doc =
      "<root><section><item/><section/></section><item/></root>";
  StatusOr<std::string> out = StreamTransform(t, doc, 1);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(*out, doc);
}

TEST_F(StreamDocFixture, IdentityTransducerSpillsNothing) {
  Transducer t = MakeIdentity();
  std::string doc = RenderDoc({StreamDocSpec::Shape::kMixed, 5000});
  std::string out;
  StringSink sink(&out);
  StatusOr<std::unique_ptr<StreamTransducer>> exec =
      StreamTransducer::Create(&t, &sink);
  ASSERT_TRUE(exec.ok());
  Status s = Drive(doc, 4096, &alphabet_,
                   [&](const XmlEvent& e) { return (*exec)->OnEvent(e); });
  ASSERT_TRUE(s.ok()) << s.ToString();
  ASSERT_TRUE((*exec)->Finish().ok());
  EXPECT_EQ((*exec)->peak_spill_bytes(), 0u);  // linear: pure write-through
  // The generator leaves childless sections as <section></section>; the
  // serializers canonicalize those to <section/>, so compare against the
  // DOM transform, not the raw input text.
  StatusOr<std::string> dom = DomTransform(t, doc);
  ASSERT_TRUE(dom.ok()) << dom.status().ToString();
  EXPECT_EQ(out, *dom);
}

TEST_F(StreamDocFixture, CopyingTransducerMatchesDomApply) {
  Transducer t = MakeCopying();
  const std::string doc = "<root><section><item/></section><item/></root>";
  StatusOr<std::string> streamed = StreamTransform(t, doc);
  StatusOr<std::string> dom = DomTransform(t, doc);
  ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
  ASSERT_TRUE(dom.ok()) << dom.status().ToString();
  EXPECT_EQ(*streamed, *dom);
}

TEST_F(StreamDocFixture, CopySpillCeilingFailsSoft) {
  Transducer t = MakeCopying();
  std::string doc = RenderDoc({StreamDocSpec::Shape::kWide, 2000});
  std::string out;
  StringSink sink(&out);
  StreamTransducer::Options options;
  options.max_spill_bytes = 64;
  StatusOr<std::unique_ptr<StreamTransducer>> exec =
      StreamTransducer::Create(&t, &sink, options);
  ASSERT_TRUE(exec.ok());
  Status s = Drive(doc, 4096, &alphabet_,
                   [&](const XmlEvent& e) { return (*exec)->OnEvent(e); });
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(s.message().find("copy-spill"), std::string::npos)
      << s.ToString();
}

TEST_F(StreamDocFixture, SelectorTransducerRejectedAtCreate) {
  Transducer t(&alphabet_);
  int m = t.AddState("m");
  t.SetInitial(m);
  ASSERT_TRUE(t.SetRuleFromString("m", "root", "root(<m, .//item>)").ok());
  std::string out;
  StringSink sink(&out);
  StatusOr<std::unique_ptr<StreamTransducer>> exec =
      StreamTransducer::Create(&t, &sink);
  ASSERT_FALSE(exec.ok());
  EXPECT_EQ(exec.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(StreamDocFixture, NonTreeOutputFailsTheRootRestriction) {
  // No rule for the root label: the translation is the empty hedge.
  Transducer t(&alphabet_);
  int m = t.AddState("m");
  t.SetInitial(m);
  ASSERT_TRUE(t.SetRuleFromString("m", "item", "item").ok());
  StatusOr<std::string> empty = StreamTransform(t, "<root><item/></root>");
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code(), StatusCode::kFailedPrecondition);

  // A hedge-shaped root rule: two trees at the root.
  Transducer pair(&alphabet_);
  int q = pair.AddState("q");
  pair.SetInitial(q);
  ASSERT_TRUE(pair.SetRuleFromString("q", "root", "item item").ok());
  StatusOr<std::string> two = StreamTransform(pair, "<root/>");
  ASSERT_FALSE(two.ok());
  EXPECT_EQ(two.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(two.status().message().find("not a single tree"),
            std::string::npos);
}

TEST_F(StreamDocFixture, TransducerInjectedBudgetFaultSurfacesCleanly) {
  Transducer t = MakeIdentity();
  Budget budget;
  budget.set_fail_at_checkpoint(1);
  std::string out;
  StringSink sink(&out);
  StreamTransducer::Options options;
  options.budget = &budget;
  StatusOr<std::unique_ptr<StreamTransducer>> exec =
      StreamTransducer::Create(&t, &sink, options);
  ASSERT_TRUE(exec.ok());
  std::string doc = RenderDoc({StreamDocSpec::Shape::kWide, 2000});
  Status s = Drive(doc, 4096, &alphabet_,
                   [&](const XmlEvent& e) { return (*exec)->OnEvent(e); });
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
}

// --- Differential sweep ---------------------------------------------------

// Mutates a valid generated document into one that is well-formed but
// schema-invalid: an unknown label if an item exists, else a renamed root.
std::string UnknownLabelMutation(std::string doc) {
  std::size_t at = doc.find("<item/>");
  if (at != std::string::npos) {
    doc.replace(at, 7, "<blob/>");
    return doc;
  }
  std::string out;
  std::size_t pos = 0;
  while (pos < doc.size()) {
    std::size_t hit = doc.find("root", pos);
    if (hit == std::string::npos) {
      out.append(doc, pos, std::string::npos);
      break;
    }
    out.append(doc, pos, hit - pos);
    out.append("blob");
    pos = hit + 4;
  }
  return out;
}

TEST_F(StreamDocFixture, DifferentialSweepMatchesDomOnGeneratedDocuments) {
  Transducer identity = MakeIdentity();
  // Root-only copying: per-section copying would be exponential in depth on
  // the deep shapes (2^200 output nodes); duplicating at the root keeps the
  // output at 2x while still exercising spill-and-splice on every doc.
  Transducer copying = MakeRootCopying();
  int docs_checked = 0;
  const StreamDocSpec::Shape shapes[] = {StreamDocSpec::Shape::kWide,
                                         StreamDocSpec::Shape::kDeep,
                                         StreamDocSpec::Shape::kMixed};
  const std::uint64_t sizes[] = {1,  2,   3,   5,   9,    17,  33,
                                 65, 129, 257, 513, 1025, 2049, 4097};
  for (StreamDocSpec::Shape shape : shapes) {
    for (std::uint64_t nodes : sizes) {
      SCOPED_TRACE("shape=" + std::to_string(static_cast<int>(shape)) +
                   " nodes=" + std::to_string(nodes));
      const std::string valid_doc = RenderDoc({shape, nodes});
      for (const std::string& doc :
           {valid_doc, UnknownLabelMutation(valid_doc)}) {
        // Verdict parity.
        EXPECT_EQ(StreamVerdict(doc), DomVerdict(doc)) << doc;
        // Output byte-parity, for the linear and the copying transducer.
        for (const Transducer* t : {&identity, &copying}) {
          StatusOr<std::string> streamed = StreamTransform(*t, doc);
          StatusOr<std::string> dom = DomTransform(*t, doc);
          ASSERT_EQ(streamed.ok(), dom.ok())
              << streamed.status().ToString() << " vs "
              << dom.status().ToString();
          if (streamed.ok()) {
            EXPECT_EQ(*streamed, *dom);
          } else {
            EXPECT_EQ(streamed.status().code(), dom.status().code());
          }
        }
        ++docs_checked;
      }
    }
  }
  EXPECT_GE(docs_checked, 80);  // the ISSUE's sweep floor
}

TEST_F(StreamDocFixture, TruncatedStreamsFailOnBothPaths) {
  for (StreamDocSpec::Shape shape :
       {StreamDocSpec::Shape::kDeep, StreamDocSpec::Shape::kMixed}) {
    std::string doc = RenderDoc({shape, 200});
    for (std::size_t cut : {doc.size() / 2, doc.size() - 1, std::size_t{3}}) {
      std::string truncated = doc.substr(0, cut);
      Status stream = Drive(truncated, 777, &alphabet_, nullptr);
      EXPECT_FALSE(stream.ok()) << "cut=" << cut;
      EXPECT_EQ(stream.code(), StatusCode::kInvalidArgument);
      Arena arena;
      TreeBuilder builder(&arena);
      EXPECT_FALSE(ParseXml(truncated, &alphabet_, &builder).ok());
    }
  }
}

TEST_F(StreamDocFixture, MismatchedTagMutationFailsOnBothPaths) {
  std::string doc = RenderDoc({StreamDocSpec::Shape::kMixed, 300});
  std::size_t at = doc.find("</section>");
  ASSERT_NE(at, std::string::npos);
  doc.replace(at, 10, "</item>");
  Status stream = Drive(doc, 777, &alphabet_, nullptr);
  ASSERT_FALSE(stream.ok());
  EXPECT_EQ(stream.code(), StatusCode::kInvalidArgument);
  Arena arena;
  TreeBuilder builder(&arena);
  EXPECT_FALSE(ParseXml(doc, &alphabet_, &builder).ok());
}

// --- Document generator ---------------------------------------------------

TEST(XmlDocStreamTest, ChunkedAndRenderedFormsAgree) {
  for (StreamDocSpec::Shape shape :
       {StreamDocSpec::Shape::kWide, StreamDocSpec::Shape::kDeep,
        StreamDocSpec::Shape::kMixed}) {
    StreamDocSpec spec{shape, 500};
    std::string whole = RenderDoc(spec);
    XmlDocStream gen(spec);
    std::string rebuilt, chunk;
    while (gen.Next(&chunk)) rebuilt += chunk;
    EXPECT_EQ(rebuilt, whole);
    EXPECT_EQ(gen.bytes_emitted(), whole.size());
  }
}

TEST(XmlDocStreamTest, EmitsExactlyTheRequestedElementCount) {
  for (StreamDocSpec::Shape shape :
       {StreamDocSpec::Shape::kWide, StreamDocSpec::Shape::kDeep,
        StreamDocSpec::Shape::kMixed}) {
    for (std::uint64_t nodes : {std::uint64_t{1}, std::uint64_t{7},
                                std::uint64_t{1000}}) {
      std::string doc = RenderDoc({shape, nodes});
      // Count element opens: "<name" not "</".
      std::uint64_t opens = 0;
      for (std::size_t i = 0; i + 1 < doc.size(); ++i) {
        if (doc[i] == '<' && doc[i + 1] != '/') ++opens;
      }
      EXPECT_EQ(opens, nodes) << "shape=" << static_cast<int>(shape);
    }
  }
}

}  // namespace
}  // namespace xtc
