#include "src/td/transducer.h"

#include <string>

#include <gtest/gtest.h>

#include "src/core/paper_examples.h"
#include "src/td/exec.h"
#include "src/td/xslt_export.h"
#include "src/tree/codec.h"

namespace xtc {
namespace {

TEST(TransducerTest, Example7TranslationMatchesFig2) {
  // Fig. 2: T(b(b(a b) a)) for the Example 6 transducer.
  PaperExample ex = MakeExample6();
  Arena arena;
  TreeBuilder builder(&arena);
  Node* input = MakeExample7Tree(ex.alphabet.get(), &builder);
  Node* output = Apply(*ex.transducer, input, &builder);
  ASSERT_NE(output, nullptr);
  // T(t) = T^p(b(b(a b) a)) = d(T^q(b(a b)) T^q(a))
  //      = d( c(T^p(a) T^p(b) T^q(a) T^q(b))  c )
  //      = d( c(d(e) d c c) c ).
  EXPECT_EQ(ToTermString(output, *ex.alphabet), "d(c(d(e) d c c) c)");
}

TEST(TransducerTest, MissingRuleYieldsEmptyHedge) {
  PaperExample ex = MakeExample6();
  Arena arena;
  TreeBuilder builder(&arena);
  // No rule for (p, c): the translation is the empty tree.
  StatusOr<Node*> input = ParseTerm("c(a)", ex.alphabet.get(), &builder);
  ASSERT_TRUE(input.ok());
  EXPECT_EQ(Apply(*ex.transducer, *input, &builder), nullptr);
}

TEST(TransducerTest, DeletionExampleFromSection25) {
  // T^q(a(b)) = c d for the Example 6 transducer (Section 2.5): the b child
  // is processed by the deleting state p at top level.
  PaperExample ex = MakeExample6();
  Arena arena;
  TreeBuilder builder(&arena);
  StatusOr<Node*> input = ParseTerm("a(b)", ex.alphabet.get(), &builder);
  ASSERT_TRUE(input.ok());
  int q = *ex.transducer->FindState("q");
  Hedge out = ApplyState(*ex.transducer, q, *input, &builder);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(ToTermString(out[0], *ex.alphabet), "c");
  EXPECT_EQ(ToTermString(out[1], *ex.alphabet), "d");
}

TEST(TransducerTest, BookToCTransformation) {
  PaperExample ex = MakeBookExample(/*with_summary=*/false);
  Arena arena;
  TreeBuilder builder(&arena);
  StatusOr<Node*> doc = ParseTerm(
      "book(title author chapter(title intro section(title paragraph "
      "section(title paragraph))) chapter(title intro section(title "
      "paragraph)))",
      ex.alphabet.get(), &builder);
  ASSERT_TRUE(doc.ok());
  ASSERT_TRUE(ex.din->Valid(*doc));
  Node* out = Apply(*ex.transducer, *doc, &builder);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(ToTermString(out, *ex.alphabet),
            "book(title chapter title title title chapter title title)");
  EXPECT_TRUE(ex.dout->Valid(out));
}

TEST(TransducerTest, BookSummaryTransformationTypeValidates) {
  PaperExample ex = MakeBookExample(/*with_summary=*/true);
  Arena arena;
  TreeBuilder builder(&arena);
  StatusOr<Node*> doc = ParseTerm(
      "book(title author chapter(title intro section(title paragraph)))",
      ex.alphabet.get(), &builder);
  ASSERT_TRUE(doc.ok());
  Node* out = Apply(*ex.transducer, *doc, &builder);
  ASSERT_NE(out, nullptr);
  // ToC part then summary part (Example 10's second transducer).
  EXPECT_EQ(ToTermString(out, *ex.alphabet),
            "book(title chapter title title chapter(title intro))");
  EXPECT_TRUE(ex.dout->Valid(out));
}

TEST(TransducerTest, RuleParsingResolvesStatesVsLabels) {
  Alphabet alphabet;
  alphabet.Intern("a");
  Transducer t(&alphabet);
  t.AddState("q");
  t.SetInitial(0);
  ASSERT_TRUE(t.SetRuleFromString("q", "a", "a(q b q)").ok());
  const RhsHedge* rhs = t.rule(0, *alphabet.Find("a"));
  ASSERT_NE(rhs, nullptr);
  ASSERT_EQ(rhs->size(), 1u);
  const RhsNode& root = (*rhs)[0];
  ASSERT_EQ(root.children.size(), 3u);
  EXPECT_EQ(root.children[0].kind, RhsNode::Kind::kState);
  EXPECT_EQ(root.children[1].kind, RhsNode::Kind::kLabel);
  EXPECT_EQ(root.children[2].kind, RhsNode::Kind::kState);
}

TEST(TransducerTest, RuleParsingErrors) {
  Alphabet alphabet;
  Transducer t(&alphabet);
  t.AddState("q");
  t.SetInitial(0);
  EXPECT_FALSE(t.SetRuleFromString("nosuch", "a", "b").ok());
  EXPECT_FALSE(t.SetRuleFromString("q", "a", "b(").ok());
  EXPECT_FALSE(t.SetRuleFromString("q", "a", "<q2, ./x>").ok());
}

TEST(TransducerTest, RhsToStringRoundTrips) {
  PaperExample ex = MakeExample6();
  int q = *ex.transducer->FindState("q");
  int b = *ex.alphabet->Find("b");
  const RhsHedge* rhs = ex.transducer->rule(q, b);
  ASSERT_NE(rhs, nullptr);
  EXPECT_EQ(ex.transducer->RhsToString(*rhs), "c(p q)");
}

TEST(TransducerTest, SizeMeasure) {
  PaperExample ex = MakeExample6();
  // |Q|=2, |Sigma|=5, rhs nodes: d(e)=2, d(q)=2, c p=2, c(p q)=3 -> 16.
  EXPECT_EQ(ex.transducer->Size(), 16u);
}

TEST(TransducerTest, XsltExportMatchesFig1Shape) {
  PaperExample ex = MakeExample6();
  std::string xslt = ExportXslt(*ex.transducer);
  EXPECT_NE(xslt.find("<xsl:template match=\"a\" mode=\"p\">"),
            std::string::npos);
  EXPECT_NE(xslt.find("<xsl:template match=\"b\" mode=\"q\">"),
            std::string::npos);
  EXPECT_NE(xslt.find("<xsl:apply-templates mode=\"q\"/>"),
            std::string::npos);
  EXPECT_NE(xslt.find("<d>"), std::string::npos);
  EXPECT_NE(xslt.find("<e/>"), std::string::npos);
}

TEST(TransducerTest, SelectorSemanticsFollowDocumentOrder) {
  PaperExample ex = MakeExample22();
  Arena arena;
  TreeBuilder builder(&arena);
  StatusOr<Node*> doc = ParseTerm(
      "book(title author chapter(title intro section(title paragraph "
      "section(title paragraph)) section(title paragraph)))",
      ex.alphabet.get(), &builder);
  ASSERT_TRUE(doc.ok());
  ASSERT_TRUE(ex.din->Valid(*doc));
  Node* out = Apply(*ex.transducer, *doc, &builder);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(ToTermString(out, *ex.alphabet),
            "book(title chapter title title title title)");
}

}  // namespace
}  // namespace xtc
