#include "src/core/relab.h"

#include <gtest/gtest.h>

#include "src/core/brute_force.h"
#include "src/core/paper_examples.h"
#include "src/core/trac.h"
#include "src/nta/analysis.h"
#include "src/td/classes.h"
#include "src/td/exec.h"
#include "src/tree/codec.h"
#include "src/workload/families.h"
#include "src/workload/generators.h"

namespace xtc {
namespace {

// Reference implementation of the #-marked totalized transducer T':
// top-level states are wrapped as #(...), missing rules yield the leaf #.
Hedge ApplyMarked(const Transducer& t, int state, const Node* input, int hash,
                  TreeBuilder* b);

void ExpandMarked(const Transducer& t, const RhsNode& n, const Node* input,
                  int hash, TreeBuilder* b, Hedge* out, bool top_level) {
  if (n.kind == RhsNode::Kind::kState) {
    Hedge sub;
    for (const Node* c : input->Children()) {
      Hedge h = ApplyMarked(t, n.state, c, hash, b);
      sub.insert(sub.end(), h.begin(), h.end());
    }
    if (top_level) {
      out->push_back(b->Make(hash, sub));
    } else {
      out->insert(out->end(), sub.begin(), sub.end());
    }
    return;
  }
  Hedge kids;
  for (const RhsNode& c : n.children) {
    ExpandMarked(t, c, input, hash, b, &kids, /*top_level=*/false);
  }
  out->push_back(b->Make(n.label, kids));
}

Hedge ApplyMarked(const Transducer& t, int state, const Node* input, int hash,
                  TreeBuilder* b) {
  const RhsHedge* rhs = t.rule(state, input->label);
  Hedge out;
  if (rhs == nullptr || rhs->empty()) {
    out.push_back(b->Leaf(hash));
    return out;
  }
  for (const RhsNode& n : *rhs) {
    ExpandMarked(t, n, input, hash, b, &out, /*top_level=*/true);
  }
  return out;
}

TEST(Lemma19Test, OutputLanguageMatchesDirectTransformation) {
  // ToC transducer (del-relab) over the book DTD: B_in must accept exactly
  // the #-marked translations of valid inputs.
  PaperExample ex = MakeBookExample(false);
  ASSERT_TRUE(IsDelRelab(*ex.transducer));
  Nta ain = Nta::FromDtd(*ex.din);
  const int hash = ex.alphabet->size();
  StatusOr<Nta> bin = OutputLanguageNta(*ex.transducer, ain, hash);
  ASSERT_TRUE(bin.ok()) << bin.status().ToString();
  EXPECT_FALSE(IsEmptyLanguage(*bin));
  EXPECT_EQ(bin->num_symbols(), hash + 1);

  Arena arena;
  TreeBuilder builder(&arena);
  BruteForceOptions opts;
  opts.max_depth = 5;
  opts.max_width = 3;
  opts.max_trees = 40;
  StatusOr<std::vector<Node*>> inputs =
      EnumerateValidTrees(*ex.din, ex.din->start(), opts, &builder);
  ASSERT_TRUE(inputs.ok());
  ASSERT_FALSE(inputs->empty());
  for (Node* input : *inputs) {
    Hedge marked =
        ApplyMarked(*ex.transducer, ex.transducer->initial(), input, hash,
                    &builder);
    ASSERT_EQ(marked.size(), 1u);
    EXPECT_TRUE(bin->Accepts(marked[0]))
        << "T'(t) rejected for t = " << ToTermString(input, *ex.alphabet);
    // A perturbed output (extra trailing # child at the root) must be
    // rejected: B_in captures the exact image.
    std::vector<Node*> kids(marked[0]->Children().begin(),
                            marked[0]->Children().end());
    kids.push_back(builder.Leaf(hash));
    Node* perturbed = builder.Make(marked[0]->label, kids);
    EXPECT_FALSE(bin->Accepts(perturbed));
  }
}

TEST(HashEliminationTest, AcceptsIffSplicedTreeAccepted) {
  // A small DTAc over {r, x}: r(x*) with even number of x's.
  Alphabet alphabet;
  alphabet.Intern("r");
  alphabet.Intern("x");
  Dtd d(&alphabet, 0);
  ASSERT_TRUE(d.SetRule("r", "(x x)*").ok());
  Nta aout = CompletedDeterministic(Nta::FromDtd(d));
  const int hash = alphabet.size();
  Nta bout = HashEliminationNta(aout, hash);

  Arena arena;
  TreeBuilder builder(&arena);
  int r = 0;
  int x = 1;
  auto leaf = [&](int label) { return builder.Leaf(label); };
  // r(x #(x)) — gamma = r(x x): accepted.
  Node* t1 = builder.Make(
      r, std::vector<Node*>{
             leaf(x), builder.Make(hash, std::vector<Node*>{leaf(x)})});
  EXPECT_TRUE(bout.Accepts(t1));
  // r(x #(x x)) — gamma = r(x x x): rejected.
  Node* t2 = builder.Make(
      r, std::vector<Node*>{
             leaf(x),
             builder.Make(hash, std::vector<Node*>{leaf(x), leaf(x)})});
  EXPECT_FALSE(bout.Accepts(t2));
  // Nested hashes: r(#(#(x x))) — gamma = r(x x): accepted.
  Node* t3 = builder.Make(
      r, std::vector<Node*>{builder.Make(
             hash, std::vector<Node*>{builder.Make(
                       hash, std::vector<Node*>{leaf(x), leaf(x)})})});
  EXPECT_TRUE(bout.Accepts(t3));
  // r(#()) — gamma = r(): accepted (zero x's is even).
  Node* t4 = builder.Make(
      r, std::vector<Node*>{builder.Make(hash, std::vector<Node*>{})});
  EXPECT_TRUE(bout.Accepts(t4));
}

TEST(RelabTest, RelabFamilyTypechecks) {
  for (int n = 1; n <= 4; ++n) {
    PaperExample ex = RelabFamily(n);
    StatusOr<TypecheckResult> r =
        TypecheckDelRelab(*ex.transducer, *ex.din, *ex.dout);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(r->typechecks) << n;
  }
}

TEST(RelabTest, DetectsArityMismatch) {
  PaperExample ex = RelabFamily(3);
  // Output schema expects only two b's: fails.
  ASSERT_TRUE(ex.dout->SetRule("r", "b b").ok());
  StatusOr<TypecheckResult> r =
      TypecheckDelRelab(*ex.transducer, *ex.din, *ex.dout);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->typechecks);
  ASSERT_NE(r->counterexample, nullptr);
  EXPECT_TRUE(VerifyCounterexample(*ex.transducer, *ex.din, *ex.dout,
                                   r->counterexample));
}

TEST(RelabTest, TocTransducerAgainstExampleSchema) {
  // The ToC transducer is del-relab; Theorem 20 must agree with Lemma 14.
  PaperExample ex = MakeBookExample(false);
  StatusOr<TypecheckResult> relab =
      TypecheckDelRelab(*ex.transducer, *ex.din, *ex.dout);
  ASSERT_TRUE(relab.ok()) << relab.status().ToString();
  EXPECT_TRUE(relab->typechecks);
  // And on the failing variant.
  ASSERT_TRUE(ex.dout->SetRule("book", "title (chapter title)+").ok());
  StatusOr<TypecheckResult> relab2 =
      TypecheckDelRelab(*ex.transducer, *ex.din, *ex.dout);
  ASSERT_TRUE(relab2.ok());
  EXPECT_FALSE(relab2->typechecks);
}

TEST(RelabTest, RejectsCopyingTransducers) {
  PaperExample ex = MakeBookExample(true);  // book(q p): two states
  StatusOr<TypecheckResult> r =
      TypecheckDelRelab(*ex.transducer, *ex.din, *ex.dout);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST(RelabTest, MissingInitialRuleFails) {
  PaperExample ex = RelabFamily(2);
  Transducer empty(ex.alphabet.get());
  empty.AddState("q0");
  empty.SetInitial(0);
  StatusOr<TypecheckResult> r = TypecheckDelRelab(empty, *ex.din, *ex.dout);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->typechecks);
  EXPECT_TRUE(VerifyCounterexample(empty, *ex.din, *ex.dout,
                                   r->counterexample));
}

// Property: Theorem 20 agrees with the Lemma 14 engine on random del-relab
// instances.
class RelabRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(RelabRandomTest, AgreesWithTracEngine) {
  RandomOptions opts;
  opts.num_symbols = 3;
  opts.num_states = 3;
  opts.max_top_width = 2;
  opts.allow_copying = false;  // one state per template at most
  PaperExample ex =
      RandomInstance(static_cast<std::uint32_t>(GetParam()), opts, false);
  if (!IsDelRelab(*ex.transducer)) {
    GTEST_SKIP() << "generator produced a non-del-relab transducer";
  }
  TypecheckOptions topts;
  topts.want_counterexample = false;
  StatusOr<TypecheckResult> relab =
      TypecheckDelRelab(*ex.transducer, *ex.din, *ex.dout, topts);
  ASSERT_TRUE(relab.ok()) << relab.status().ToString();
  StatusOr<TypecheckResult> trac =
      TypecheckTrac(*ex.transducer, *ex.din, *ex.dout, topts);
  ASSERT_TRUE(trac.ok()) << trac.status().ToString();
  EXPECT_EQ(relab->typechecks, trac->typechecks);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RelabRandomTest, ::testing::Range(0, 40));

}  // namespace
}  // namespace xtc
