#include "src/service/json.h"

#include <string>

#include <gtest/gtest.h>

namespace xtc {
namespace {

TEST(JsonTest, ParsesScalars) {
  EXPECT_TRUE(ParseJson("null")->is_null());
  EXPECT_TRUE(ParseJson("true")->AsBool());
  EXPECT_FALSE(ParseJson("false")->AsBool());
  EXPECT_DOUBLE_EQ(ParseJson("42")->AsNumber(), 42);
  EXPECT_DOUBLE_EQ(ParseJson("-3.5e2")->AsNumber(), -350);
  EXPECT_EQ(ParseJson("\"hi\"")->AsString(), "hi");
}

TEST(JsonTest, ParsesNestedStructure) {
  StatusOr<JsonValue> doc =
      ParseJson(R"({"op": "typecheck", "ids": [1, 2, 3], "inner": {"a": true}})");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->Find("op")->AsString(), "typecheck");
  EXPECT_EQ(doc->Find("ids")->AsArray().size(), 3u);
  EXPECT_DOUBLE_EQ(doc->Find("ids")->AsArray()[1].AsNumber(), 2);
  EXPECT_TRUE(doc->Find("inner")->Find("a")->AsBool());
  EXPECT_EQ(doc->Find("missing"), nullptr);
}

TEST(JsonTest, DecodesEscapes) {
  StatusOr<JsonValue> doc = ParseJson(R"("a\n\t\"\\\u0041\u00e9")");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->AsString(), "a\n\t\"\\A\xc3\xa9");
}

TEST(JsonTest, DecodesSurrogatePairs) {
  StatusOr<JsonValue> doc = ParseJson(R"("\ud83d\ude00")");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->AsString(), "\xf0\x9f\x98\x80");
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("{\"a\" 1}").ok());
  EXPECT_FALSE(ParseJson("tru").ok());
  EXPECT_FALSE(ParseJson("1 2").ok());          // trailing garbage
  EXPECT_FALSE(ParseJson("\"\x01\"").ok());     // raw control char
  EXPECT_FALSE(ParseJson("\"\\x41\"").ok());    // invalid escape
  EXPECT_FALSE(ParseJson("\"\\ud83d\"").ok());  // lone surrogate
  EXPECT_FALSE(ParseJson("nan").ok());
}

TEST(JsonTest, DepthIsFuelLimited) {
  // Parser recursion is bounded like every other parser in the repo; a
  // deeply nested line must fail cleanly, not overflow the stack.
  std::string deep;
  for (int i = 0; i < 100000; ++i) deep += '[';
  EXPECT_FALSE(ParseJson(deep).ok());
  std::string shallow = "[[[[[[[[[[1]]]]]]]]]]";
  EXPECT_TRUE(ParseJson(shallow).ok());
}

TEST(JsonTest, DumpRoundTrips) {
  const char* text =
      R"({"op":"typecheck","n":3,"ok":true,"names":["a","b"],"x":null})";
  StatusOr<JsonValue> doc = ParseJson(text);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Dump(), text);
}

TEST(JsonTest, DumpEscapesControlCharactersAndStaysOneLine) {
  JsonValue v = JsonValue::Str("line1\nline2\ttab\x01");
  std::string dumped = v.Dump();
  EXPECT_EQ(dumped.find('\n'), std::string::npos);
  EXPECT_EQ(dumped, "\"line1\\nline2\\ttab\\u0001\"");
}

TEST(JsonTest, DumpPrintsIntegersExactlyAndDoublesShortest) {
  EXPECT_EQ(JsonValue::Number(42).Dump(), "42");
  EXPECT_EQ(JsonValue::Number(-7).Dump(), "-7");
  EXPECT_EQ(JsonValue::Number(9.446).Dump(), "9.446");
  StatusOr<JsonValue> back = ParseJson(JsonValue::Number(0.1).Dump());
  ASSERT_TRUE(back.ok());
  EXPECT_DOUBLE_EQ(back->AsNumber(), 0.1);
}

TEST(JsonTest, StreamRequestLinesRoundTripAtTheJsonLayer) {
  // The streaming wire format (request.h) rides plain NDJSON: XML text in
  // string fields must survive Dump/Parse untouched — angle brackets need
  // no escaping — and doc_chunk continuation lines are ordinary objects.
  const char* request = R"({"op":"validate_stream",)"
                        R"("doc":"<a><b/></a>","format":"xml"})";
  StatusOr<JsonValue> doc = ParseJson(request);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->Find("doc")->AsString(), "<a><b/></a>");
  EXPECT_EQ(doc->Find("format")->AsString(), "xml");
  EXPECT_EQ(doc->Dump(), request);

  const char* chunk = R"({"doc_chunk":"<a><b/>","last":false})";
  StatusOr<JsonValue> line = ParseJson(chunk);
  ASSERT_TRUE(line.ok());
  EXPECT_EQ(line->Find("doc_chunk")->AsString(), "<a><b/>");
  EXPECT_FALSE(line->Find("last")->AsBool());
  EXPECT_EQ(line->Dump(), chunk);
}

TEST(JsonTest, SetOverwritesObjectFields) {
  JsonValue o = JsonValue::Object();
  o.Set("a", JsonValue::Number(1));
  o.Set("b", JsonValue::Number(2));
  o.Set("a", JsonValue::Number(3));
  EXPECT_EQ(o.AsObject().size(), 2u);
  EXPECT_DOUBLE_EQ(o.Find("a")->AsNumber(), 3);
}

}  // namespace
}  // namespace xtc
