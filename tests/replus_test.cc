#include "src/core/replus.h"

#include <gtest/gtest.h>

#include "src/core/brute_force.h"
#include "src/core/minvast.h"
#include "src/core/trac.h"
#include "src/td/widths.h"
#include "src/tree/codec.h"
#include "src/workload/families.h"
#include "src/workload/generators.h"

namespace xtc {
namespace {

PaperExample BookInstance() {
  // The book schemas are DTD(RE+) except the output rules, so build a pure
  // RE+ variant: ToC against a permissive RE+ schema.
  PaperExample ex;
  ex.alphabet = std::make_shared<Alphabet>();
  for (const char* s : {"book", "title", "author", "chapter", "intro",
                        "section", "paragraph"}) {
    ex.alphabet->Intern(s);
  }
  int book = *ex.alphabet->Find("book");
  ex.din = std::make_shared<Dtd>(ex.alphabet.get(), book);
  EXPECT_TRUE(ex.din->SetRule("book", "title author+ chapter+").ok());
  EXPECT_TRUE(ex.din->SetRule("chapter", "title intro section+").ok());
  // Non-recursive RE+ variant of the section rule.
  EXPECT_TRUE(ex.din->SetRule("section", "title paragraph+").ok());
  ex.transducer = std::make_shared<Transducer>(ex.alphabet.get());
  int q = ex.transducer->AddState("q");
  ex.transducer->SetInitial(q);
  EXPECT_TRUE(ex.transducer->SetRuleFromString("q", "book", "book(q)").ok());
  EXPECT_TRUE(
      ex.transducer->SetRuleFromString("q", "chapter", "chapter q").ok());
  EXPECT_TRUE(ex.transducer->SetRuleFromString("q", "title", "title").ok());
  EXPECT_TRUE(ex.transducer->SetRuleFromString("q", "section", "q").ok());
  ex.dout = std::make_shared<Dtd>(ex.alphabet.get(), book);
  // Every chapter yields its own title plus one per section.
  EXPECT_TRUE(ex.dout->SetRule("book", "title chapter title title+").ok());
  return ex;
}

TEST(RePlusTypecheckTest, SingleChapterInstanceTypechecks) {
  PaperExample ex = BookInstance();
  // Restrict to exactly one chapter so the output schema above is tight.
  ASSERT_TRUE(ex.din->SetRule("book", "title author+ chapter").ok());
  StatusOr<TypecheckResult> r =
      TypecheckRePlus(*ex.transducer, *ex.din, *ex.dout);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->typechecks);
}

TEST(RePlusTypecheckTest, MultiChapterViolatesTightSchema) {
  PaperExample ex = BookInstance();  // chapter+ in d_in
  StatusOr<TypecheckResult> r =
      TypecheckRePlus(*ex.transducer, *ex.din, *ex.dout);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->typechecks);
  ASSERT_NE(r->counterexample, nullptr);
  EXPECT_TRUE(VerifyCounterexample(*ex.transducer, *ex.din, *ex.dout,
                                   r->counterexample));
}

TEST(RePlusTypecheckTest, RejectsNonRePlusSchemas) {
  PaperExample ex = MakeBookExample(false);  // d_out uses ( | )*, not RE+
  StatusOr<TypecheckResult> r =
      TypecheckRePlus(*ex.transducer, *ex.din, *ex.dout);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST(RePlusTypecheckTest, UnboundedCopyingFamilyIsPolynomial) {
  // Copying width 12 would be hopeless for the Lemma 14 engine; the
  // Section 5 grammar engine handles it easily.
  PaperExample ex = RePlusCopyFamily(12);
  StatusOr<TypecheckResult> r =
      TypecheckRePlus(*ex.transducer, *ex.din, *ex.dout);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->typechecks);
}

TEST(RePlusTypecheckTest, UnboundedCopyingCatchesParityViolation) {
  PaperExample ex = RePlusCopyFamily(2);
  // Two copies of a+ make an even count at least 2; demanding exactly three
  // a's must fail... demanding at least three must succeed only if some
  // input has >= 2 a's, so it fails on the singleton input.
  ASSERT_TRUE(ex.dout->SetRule("r", "a a a+").ok());
  StatusOr<TypecheckResult> r =
      TypecheckRePlus(*ex.transducer, *ex.din, *ex.dout);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->typechecks);
  EXPECT_TRUE(VerifyCounterexample(*ex.transducer, *ex.din, *ex.dout,
                                   r->counterexample));
}

TEST(MinVastTest, AgreesOnBookInstances) {
  PaperExample good = BookInstance();
  ASSERT_TRUE(good.din->SetRule("book", "title author+ chapter").ok());
  StatusOr<TypecheckResult> r1 =
      TypecheckMinVast(*good.transducer, *good.din, *good.dout);
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(r1->typechecks);

  PaperExample bad = BookInstance();
  StatusOr<TypecheckResult> r2 =
      TypecheckMinVast(*bad.transducer, *bad.din, *bad.dout);
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(r2->typechecks);
  EXPECT_TRUE(VerifyCounterexample(*bad.transducer, *bad.din, *bad.dout,
                                   r2->counterexample));
}

// Property sweep: the grammar engine, the t_min/t_vast engine, and (when
// applicable) the Lemma 14 engine agree on random DTD(RE+) instances; all
// reported counterexamples verify.
class RePlusRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(RePlusRandomTest, EnginesAgree) {
  RandomOptions opts;
  opts.num_symbols = 4;
  opts.num_states = 3;
  PaperExample ex =
      RandomInstance(static_cast<std::uint32_t>(GetParam()), opts, true);
  StatusOr<TypecheckResult> grammar =
      TypecheckRePlus(*ex.transducer, *ex.din, *ex.dout);
  ASSERT_TRUE(grammar.ok()) << grammar.status().ToString();
  StatusOr<TypecheckResult> minvast =
      TypecheckMinVast(*ex.transducer, *ex.din, *ex.dout);
  ASSERT_TRUE(minvast.ok());
  EXPECT_EQ(grammar->typechecks, minvast->typechecks);
  if (!grammar->typechecks && grammar->counterexample != nullptr) {
    EXPECT_TRUE(VerifyCounterexample(*ex.transducer, *ex.din, *ex.dout,
                                     grammar->counterexample));
  }
  // Cross-check with the Lemma 14 engine when the widths allow it.
  WidthAnalysis w = AnalyzeWidths(*ex.transducer);
  if (w.dpw_bounded && w.copying_width * w.deletion_path_width <= 6) {
    StatusOr<TypecheckResult> trac =
        TypecheckTrac(*ex.transducer, *ex.din, *ex.dout);
    ASSERT_TRUE(trac.ok());
    EXPECT_EQ(trac->typechecks, grammar->typechecks);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RePlusRandomTest, ::testing::Range(0, 60));

}  // namespace
}  // namespace xtc
