// Multi-threaded service stress: many client threads submitting mixed
// workload-family batches against a small shared cache, checked against
// single-threaded ground truth. Run under the tsan preset in CI — this is
// the test that exercises every cross-thread contract of the service layer
// (src/base/README.md): shared immutable artifacts, the universe alphabet
// registry, cache eviction racing with artifact use, and the queue.

#include <future>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/service/replay.h"
#include "src/service/service.h"

namespace xtc {
namespace {

struct Truth {
  bool typechecks = false;
};

// Mixed batch across families and sizes; small sizes keep the stress test
// fast while still covering selector compilation, determinization, RE+ and
// failing instances.
std::vector<ServiceRequest> MixedBatch() {
  std::vector<ServiceRequest> batch;
  const std::pair<const char*, int> kMix[] = {
      {"filter", 2}, {"filter", 4}, {"failing", 3}, {"width", 2},
      {"relab", 3},  {"replus", 2}, {"xpath", 3},   {"nfa", 5},
  };
  int id = 0;
  for (const auto& [family, n] : kMix) {
    StatusOr<std::vector<ServiceRequest>> sub =
        MakeFamilyBatch(family, n, /*count=*/2, /*distinct=*/2);
    XTC_CHECK(sub.ok());
    for (ServiceRequest& request : *sub) {
      request.id = ++id;
      batch.push_back(std::move(request));
    }
  }
  return batch;
}

std::map<std::int64_t, Truth> GroundTruth(
    const std::vector<ServiceRequest>& batch) {
  TypecheckService::Options options;
  options.num_threads = 0;  // Process() runs synchronously on this thread
  TypecheckService service(options);
  std::map<std::int64_t, Truth> truth;
  for (const ServiceRequest& request : batch) {
    ServiceResponse response = service.Process(request);
    XTC_CHECK_MSG(response.status.ok(), response.status.ToString().c_str());
    truth[request.id] = Truth{response.typechecks};
  }
  return truth;
}

TEST(ServiceStressTest, ManyClientsMixedWorkloadsMatchGroundTruth) {
  std::vector<ServiceRequest> batch = MixedBatch();
  std::map<std::int64_t, Truth> truth = GroundTruth(batch);

  constexpr int kClients = 8;
  constexpr int kRounds = 6;
  TypecheckService::Options options;
  options.num_threads = 4;
  options.queue_capacity = 4096;
  // A deliberately tight cache: eviction and recompilation race with
  // artifact use from other workers.
  options.cache.max_bytes = 64 << 10;
  options.cache.max_universes = 4;
  TypecheckService service(options);

  std::vector<std::thread> clients;
  std::vector<std::vector<std::future<ServiceResponse>>> futures(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int round = 0; round < kRounds; ++round) {
        // Vary submission order per client so cache access patterns differ.
        for (std::size_t i = 0; i < batch.size(); ++i) {
          std::size_t pick =
              (i * 7 + static_cast<std::size_t>(c + round)) % batch.size();
          futures[static_cast<std::size_t>(c)].push_back(
              service.Submit(batch[pick]));
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();

  int checked = 0;
  for (auto& client_futures : futures) {
    for (std::future<ServiceResponse>& future : client_futures) {
      ServiceResponse response = future.get();
      ASSERT_TRUE(response.status.ok()) << response.status.ToString();
      ASSERT_EQ(truth.count(response.id), 1u);
      EXPECT_EQ(response.typechecks, truth[response.id].typechecks)
          << "request " << response.id;
      ++checked;
    }
  }
  EXPECT_EQ(checked, kClients * kRounds * static_cast<int>(batch.size()));

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed, static_cast<std::uint64_t>(checked));
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.shed, 0u);
  // The tight universe cap forces constant cascade eviction and
  // recompilation; the point is correctness under thrash, not hit rate.
  EXPECT_GT(stats.cache.misses, 0u);
  EXPECT_LE(stats.cache.bytes, options.cache.max_bytes);
}

TEST(ServiceStressTest, SheddingUnderOverloadIsWellFormed) {
  StatusOr<std::vector<ServiceRequest>> batch =
      MakeFamilyBatch("filter", 3, 64, 4);
  ASSERT_TRUE(batch.ok());

  TypecheckService::Options options;
  options.num_threads = 2;
  options.queue_capacity = 8;  // guaranteed overflow under 4 client threads
  TypecheckService service(options);

  constexpr int kClients = 4;
  std::vector<std::thread> clients;
  std::vector<std::vector<std::future<ServiceResponse>>> futures(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (const ServiceRequest& request : *batch) {
        futures[static_cast<std::size_t>(c)].push_back(
            service.Submit(request));
      }
    });
  }
  for (std::thread& client : clients) client.join();

  std::uint64_t ok = 0;
  std::uint64_t shed = 0;
  for (auto& client_futures : futures) {
    for (std::future<ServiceResponse>& future : client_futures) {
      ServiceResponse response = future.get();
      if (response.status.ok()) {
        // Near the queue-full boundary admission degrades typechecks to
        // the approximate tier, whose false verdicts may be false alarms;
        // exact-tier verdicts must still be the ground truth (filter
        // instances typecheck), and a degraded `true` is always sound.
        if (!response.approximate) {
          EXPECT_TRUE(response.typechecks);
          EXPECT_EQ(response.tier, AdmissionTier::kExact);
        } else {
          EXPECT_EQ(response.tier, AdmissionTier::kApproximate);
        }
        ++ok;
      } else {
        // Shed responses are immediate, well-formed, and echo the id.
        EXPECT_EQ(response.status.code(), StatusCode::kResourceExhausted);
        ++shed;
      }
    }
  }
  ServiceStats stats = service.stats();
  EXPECT_EQ(ok, stats.completed);
  EXPECT_EQ(shed, stats.shed);
  EXPECT_EQ(ok + shed,
            static_cast<std::uint64_t>(kClients) * batch->size());
  EXPECT_GT(ok, 0u);  // workers made progress even while overloaded
}

TEST(ServiceStressTest, ConcurrentFirstCompileYieldsOneArtifact) {
  // All clients miss the same keys at t=0: everyone may compile, but the
  // cache must converge on one artifact per key and agree on results.
  StatusOr<std::vector<ServiceRequest>> batch =
      MakeFamilyBatch("nfa", 6, 8, 1);
  ASSERT_TRUE(batch.ok());
  TypecheckService::Options options;
  options.num_threads = 8;
  TypecheckService service(options);
  std::vector<std::future<ServiceResponse>> futures;
  for (ServiceRequest& request : *batch) {
    futures.push_back(service.Submit(std::move(request)));
  }
  for (std::future<ServiceResponse>& future : futures) {
    ServiceResponse response = future.get();
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    EXPECT_TRUE(response.typechecks);
  }
  ServiceStats stats = service.stats();
  // 8 identical requests × 3 component lookups: every lookup resolved.
  EXPECT_EQ(stats.cache.hits + stats.cache.misses, 24u);
  // One artifact per distinct key: the nfa family uses the same schema as
  // input and output type, so the three components dedupe to two entries.
  EXPECT_EQ(stats.cache.entries, 2u);
}

}  // namespace
}  // namespace xtc
