// Antichain subsumption pruning (DESIGN.md §3e) and its supporting data
// structures: unit tests for the adaptive state sets and the antichain
// index, a differential sweep proving pruning never changes verdicts or
// invalidates witnesses at any thread count, snapshot round-trips with
// pruning, and the parallel fault-injection untorn-snapshot check with the
// antichain layer on.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "src/base/antichain.h"
#include "src/base/arena.h"
#include "src/base/budget.h"
#include "src/base/concurrent_interner.h"
#include "src/base/sparse_state_set.h"
#include "src/nta/lazy.h"
#include "src/nta/nta.h"
#include "src/tree/hashcons.h"
#include "src/tree/tree.h"
#include "src/workload/generators.h"

namespace xtc {
namespace {

// ---------------------------------------------------------------------------
// src/base units.

TEST(SparseStateSetTest, MembershipAndContainsAll) {
  const std::vector<int> abc = {1, 5, 9000};
  const std::vector<int> ab = {1, 5};
  SparseStateSet s = SparseStateSet::FromSorted(abc, 10000);
  EXPECT_EQ(s.universe(), 10000);
  EXPECT_EQ(s.Count(), 3);
  EXPECT_TRUE(s.Test(1));
  EXPECT_TRUE(s.Test(9000));
  EXPECT_FALSE(s.Test(0));
  EXPECT_FALSE(s.Test(9999));

  SparseStateSet t = SparseStateSet::FromSorted(ab, 10000);
  EXPECT_TRUE(s.ContainsAll(t));
  EXPECT_FALSE(t.ContainsAll(s));
  EXPECT_TRUE(s.ContainsAll(s));
  SparseStateSet empty = SparseStateSet::FromSorted({}, 10000);
  EXPECT_TRUE(t.ContainsAll(empty));
  EXPECT_FALSE(empty.ContainsAll(t));
  EXPECT_TRUE(empty.ContainsAll(empty));
}

TEST(AdaptiveStateSetTest, RepresentationFollowsThreshold) {
  const std::vector<int> members = {0, 63, 64, 100};
  AdaptiveStateSet dense(members, /*universe=*/101, /*dense_threshold=*/2048);
  AdaptiveStateSet sparse(members, /*universe=*/5000,
                          /*dense_threshold=*/2048);
  EXPECT_FALSE(dense.sparse());
  EXPECT_TRUE(sparse.sparse());
  for (const AdaptiveStateSet* s : {&dense, &sparse}) {
    EXPECT_EQ(s->Count(), 4);
    EXPECT_TRUE(s->Test(63));
    EXPECT_TRUE(s->Test(64));
    EXPECT_FALSE(s->Test(65));
  }
  EXPECT_EQ(dense.universe(), 101);
  EXPECT_EQ(sparse.universe(), 5000);
}

TEST(AdaptiveStateSetTest, ContainsAllAcrossRepresentations) {
  const std::vector<int> big = {2, 3, 70, 71};
  const std::vector<int> small = {3, 70};
  for (const int universe : {128, 4096}) {
    AdaptiveStateSet b(big, universe, kDefaultDenseThreshold);
    AdaptiveStateSet s(small, universe, kDefaultDenseThreshold);
    EXPECT_TRUE(b.ContainsAll(s)) << "universe " << universe;
    EXPECT_FALSE(s.ContainsAll(b)) << "universe " << universe;
  }
  // Defensive mixed-mode fallback (different thresholds on the two sides).
  AdaptiveStateSet dense(big, 4096, /*dense_threshold=*/1 << 20);
  AdaptiveStateSet sparse(small, 4096, /*dense_threshold=*/16);
  EXPECT_FALSE(dense.sparse());
  EXPECT_TRUE(sparse.sparse());
  EXPECT_TRUE(dense.ContainsAll(sparse));
  EXPECT_FALSE(sparse.ContainsAll(dense));
}

TEST(ScratchSetTest, AddExtractClearCycle) {
  ScratchSet scratch;
  scratch.EnsureUniverse(300);
  EXPECT_TRUE(scratch.Add(250));
  EXPECT_TRUE(scratch.Add(3));
  EXPECT_FALSE(scratch.Add(250));  // duplicate
  EXPECT_TRUE(scratch.Add(64));
  EXPECT_TRUE(scratch.Test(3));
  EXPECT_FALSE(scratch.Test(4));
  std::vector<int> out = {99};  // must be replaced, not appended to
  scratch.ExtractSortedAndClear(&out);
  EXPECT_EQ(out, (std::vector<int>{3, 64, 250}));
  // The set is empty again and reusable at a larger universe.
  EXPECT_FALSE(scratch.Test(3));
  scratch.EnsureUniverse(1000);
  EXPECT_TRUE(scratch.Add(999));
  scratch.ExtractSortedAndClear(&out);
  EXPECT_EQ(out, (std::vector<int>{999}));
}

// Dominance order used by the index tests: key = [ex, mask-id] where the
// mask id dominates iff numerically >= (a stand-in for set inclusion).
bool ToyDominates(std::span<const int> x, std::span<const int> y) {
  return x[0] == y[0] && x[1] >= y[1];
}

TEST(AntichainIndexTest, PruneAndDisplace) {
  AntichainIndex index;
  index.Configure({0});
  std::vector<int> displaced;

  const std::vector<int> low = {7, 1};
  const std::vector<int> high = {7, 5};
  const std::vector<int> other = {8, 0};
  EXPECT_FALSE(index.Insert(0, low, ToyDominates, &displaced));
  EXPECT_TRUE(displaced.empty());
  EXPECT_EQ(index.live(), 1u);

  // A dominated newcomer is pruned; nothing is displaced.
  EXPECT_TRUE(index.Insert(1, low, ToyDominates, &displaced));
  EXPECT_TRUE(displaced.empty());
  EXPECT_EQ(index.live(), 1u);

  // A dominating newcomer displaces the live entry.
  EXPECT_FALSE(index.Insert(2, high, ToyDominates, &displaced));
  EXPECT_EQ(displaced, std::vector<int>{0});
  EXPECT_EQ(index.live(), 1u);

  // Different existential coordinate: incomparable, coexists.
  displaced.clear();
  EXPECT_FALSE(index.Insert(3, other, ToyDominates, &displaced));
  EXPECT_TRUE(displaced.empty());
  EXPECT_EQ(index.live(), 2u);

  // The displaced entry is gone: its old key no longer prunes anything it
  // would have pruned, and re-offering it is pruned by the dominator.
  EXPECT_TRUE(index.Insert(4, low, ToyDominates, &displaced));
}

TEST(SharedAntichainIndexTest, ConcurrentOffersKeepOneWinnerPerClass) {
  // Many threads offer configs in the same comparability class; the chain
  // ordering means exactly one entry (the maximum offered) survives, and
  // every id except the winner's is either pruned at insert or displaced
  // exactly once. Counting both must account for every offer.
  SharedAntichainIndex index;
  index.Configure({0});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 64;
  std::atomic<int> pruned{0};
  std::atomic<int> displaced_total{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&index, &pruned, &displaced_total, t] {
      std::vector<int> displaced;
      for (int i = 0; i < kPerThread; ++i) {
        const int id = t * kPerThread + i;
        const std::vector<int> key = {42, (id * 2654435761u) % 977};
        displaced.clear();
        if (index.Insert(id, key, ToyDominates, &displaced)) {
          pruned.fetch_add(1, std::memory_order_relaxed);
        } else {
          displaced_total.fetch_add(static_cast<int>(displaced.size()),
                                    std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(pruned.load() + displaced_total.load(), kThreads * kPerThread - 1);
}

TEST(TombstoneLogTest, ExactlyOneSetterWinsPerId) {
  TombstoneLog log(1 << 14);
  EXPECT_FALSE(log.Test(0));
  EXPECT_FALSE(log.Test(10000));  // segment not allocated yet
  EXPECT_TRUE(log.Set(10000));
  EXPECT_FALSE(log.Set(10000));
  EXPECT_TRUE(log.Test(10000));
  EXPECT_FALSE(log.Test(9999));

  std::atomic<int> wins{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&log, &wins] {
      for (int id = 0; id < 512; ++id) {
        if (log.Set(id)) wins.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(wins.load(), 512);
  for (int id = 0; id < 512; ++id) EXPECT_TRUE(log.Test(id));
}

// ---------------------------------------------------------------------------
// Engine-level differential properties. Same query construction as
// lazy_determinize_test.cc: the inclusion L(din) ⊆ L(dout) as
// L(A_in) ∩ complement L(A_out).

struct InclusionQuery {
  std::unique_ptr<Nta> a;
  std::unique_ptr<Nta> b;
  LazyProductSpec spec;
};

InclusionQuery MakeInclusion(std::uint32_t seed) {
  RandomOptions options;
  options.num_symbols = 3 + static_cast<int>(seed % 3);
  options.num_states = 3;
  PaperExample ex = RandomInstance(seed, options, /*re_plus=*/seed % 2 == 1);
  InclusionQuery q{std::make_unique<Nta>(Nta::FromDtd(*ex.din)),
                   std::make_unique<Nta>(Nta::FromDtd(*ex.dout)),
                   {}};
  q.spec.AddNta(q.a.get());
  q.spec.AddDeterminized(q.b.get(), /*complement=*/true);
  return q;
}

// A deterministic, heavily prunable family (the bench_antichain shape,
// scaled down): the existential side accepts all trees over {u, b_1..b_k,
// n}; the determinized side's bottom-up subsets form the full union
// lattice over k generators, every subset a superset of the leaf-u
// singleton {q0}, so under the complemented polarity {q0} dominates
// everything and the antichain collapses ~2^k configs to ~k+1.
struct PrunableQuery {
  std::unique_ptr<Nta> a;
  std::unique_ptr<Nta> b;
  LazyProductSpec spec;
};

Nfa EpsilonNfa(int alphabet) {
  Nfa nfa(alphabet);
  nfa.AddState(/*initial=*/true, /*final=*/true);
  return nfa;
}

PrunableQuery MakePrunable(int k, int pad) {
  const int num_symbols = k + 2;
  auto a = std::make_unique<Nta>(num_symbols, 1);
  a->SetFinal(0);
  for (int s = 0; s <= k; ++s) a->SetTransition(0, s, EpsilonNfa(1));
  Nfa one_or_more(1);
  int s0 = one_or_more.AddState(/*initial=*/true, /*final=*/false);
  int s1 = one_or_more.AddState(/*initial=*/false, /*final=*/true);
  one_or_more.AddTransition(s0, 0, s1);
  one_or_more.AddTransition(s1, 0, s1);
  a->SetTransition(0, k + 1, one_or_more);

  const int num_states = k + 1 + pad;
  auto b = std::make_unique<Nta>(num_symbols, num_states);
  b->SetFinal(0);
  b->SetTransition(0, 0, EpsilonNfa(num_states));
  for (int i = 1; i <= k; ++i) {
    b->SetTransition(0, i, EpsilonNfa(num_states));
    b->SetTransition(i, i, EpsilonNfa(num_states));
  }
  for (int q = 0; q <= k; ++q) {
    Nfa contains(num_states);
    int c0 = contains.AddState(/*initial=*/true, /*final=*/false);
    int c1 = contains.AddState(/*initial=*/false, /*final=*/true);
    for (int c = 0; c <= k; ++c) {
      contains.AddTransition(c0, c, c0);
      contains.AddTransition(c1, c, c1);
    }
    contains.AddTransition(c0, q, c1);
    b->SetTransition(q, k + 1, contains);
  }

  PrunableQuery q{std::move(a), std::move(b), {}};
  q.spec.AddNta(q.a.get());
  q.spec.AddDeterminized(q.b.get(), /*complement=*/true);
  return q;
}

constexpr int kThreadSweep[] = {1, 2, 4, 8};

TEST(AntichainTest, VerdictsAndWitnessesMatchAcrossPruningAndThreads) {
  // The headline differential sweep: 80 random inclusion instances, the
  // antichain layer on and off, at 1/2/4/8 threads — one verdict per
  // instance, and every non-empty run's witness must be a genuine
  // counterexample regardless of which configs pruning skipped.
  int nonempty = 0;
  for (std::uint32_t seed = 1; seed <= 80; ++seed) {
    InclusionQuery q = MakeInclusion(seed);
    LazyOptions reference_options;
    reference_options.antichain = false;
    StatusOr<EmptinessOutcome> reference =
        LazyEmptiness(q.spec, nullptr, reference_options);
    ASSERT_TRUE(reference.ok())
        << "seed " << seed << ": " << reference.status().ToString();
    if (!reference->empty) ++nonempty;
    for (const int threads : kThreadSweep) {
      for (const bool antichain : {false, true}) {
        LazyOptions options;
        options.threads = threads;
        options.antichain = antichain;
        SharedForest forest;
        StatusOr<EmptinessOutcome> out =
            LazyEmptiness(q.spec, &forest, options);
        ASSERT_TRUE(out.ok())
            << "seed " << seed << " threads " << threads << " antichain "
            << antichain << ": " << out.status().ToString();
        EXPECT_EQ(out->empty, reference->empty)
            << "seed " << seed << " threads " << threads << " antichain "
            << antichain;
        if (!antichain) {
          EXPECT_EQ(out->stats.pruned_configs, 0u) << "seed " << seed;
          EXPECT_EQ(out->stats.displaced_configs, 0u) << "seed " << seed;
        }
        if (!out->empty) {
          ASSERT_GE(out->witness, 0)
              << "seed " << seed << " threads " << threads;
          Arena arena;
          TreeBuilder builder(&arena);
          StatusOr<Node*> tree =
              forest.Materialize(out->witness, &builder, 1 << 20);
          ASSERT_TRUE(tree.ok())
              << "seed " << seed << " threads " << threads << " antichain "
              << antichain << ": " << tree.status().ToString();
          EXPECT_TRUE(q.a->Accepts(*tree))
              << "seed " << seed << " threads " << threads;
          EXPECT_FALSE(q.b->Accepts(*tree))
              << "seed " << seed << " threads " << threads;
        }
      }
    }
  }
  EXPECT_GT(nonempty, 0);
  EXPECT_LT(nonempty, 80);
}

TEST(AntichainTest, PruningShrinksThePrunableFamily) {
  // On the constructed family the effect must actually show: fewer
  // discovered configs, non-zero prune counters, same (empty) verdict.
  // Both universe regimes: dense (pad 0) and sparse (pad past the
  // threshold).
  for (const int pad : {0, kDefaultDenseThreshold + 1024}) {
    PrunableQuery q = MakePrunable(/*k=*/5, pad);
    LazyOptions on;
    LazyOptions off;
    off.antichain = false;
    StatusOr<EmptinessOutcome> pruned = LazyEmptiness(q.spec, nullptr, on);
    StatusOr<EmptinessOutcome> full = LazyEmptiness(q.spec, nullptr, off);
    ASSERT_TRUE(pruned.ok()) << pruned.status().ToString();
    ASSERT_TRUE(full.ok()) << full.status().ToString();
    EXPECT_TRUE(pruned->empty);
    EXPECT_TRUE(full->empty);
    EXPECT_GT(pruned->stats.pruned_configs + pruned->stats.displaced_configs,
              0u)
        << "pad " << pad;
    EXPECT_LT(pruned->stats.configs, full->stats.configs) << "pad " << pad;
    EXPECT_EQ(full->stats.pruned_configs, 0u);

    // The parallel engine prunes the same family (counts may differ by
    // schedule; the verdict and the did-prune signal may not).
    LazyOptions par = on;
    par.threads = 4;
    StatusOr<EmptinessOutcome> parallel = LazyEmptiness(q.spec, nullptr, par);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    EXPECT_TRUE(parallel->empty);
    EXPECT_GT(
        parallel->stats.pruned_configs + parallel->stats.displaced_configs,
        0u)
        << "pad " << pad;
  }
}

TEST(AntichainTest, PureExistentialProductsAreUnaffected) {
  // No determinized component: the antichain layer must disengage (the
  // interner's equality dedup is already maximal), leaving counters zero
  // and verdicts equal with the knob either way.
  for (std::uint32_t seed = 1; seed <= 20; ++seed) {
    RandomOptions gen;
    gen.num_symbols = 3;
    PaperExample ex1 = RandomInstance(seed, gen, /*re_plus=*/false);
    PaperExample ex2 = RandomInstance(seed + 1000, gen, /*re_plus=*/true);
    Nta a = Nta::FromDtd(*ex1.din);
    Nta b = Nta::FromDtd(*ex2.din);
    if (a.num_symbols() != b.num_symbols()) continue;
    LazyProductSpec spec;
    spec.AddNta(&a);
    spec.AddNta(&b);
    LazyOptions on;
    LazyOptions off;
    off.antichain = false;
    StatusOr<EmptinessOutcome> with = LazyEmptiness(spec, nullptr, on);
    StatusOr<EmptinessOutcome> without = LazyEmptiness(spec, nullptr, off);
    ASSERT_TRUE(with.ok()) << "seed " << seed;
    ASSERT_TRUE(without.ok()) << "seed " << seed;
    EXPECT_EQ(with->empty, without->empty) << "seed " << seed;
    EXPECT_EQ(with->stats.pruned_configs, 0u) << "seed " << seed;
    EXPECT_EQ(with->stats.configs, without->stats.configs) << "seed " << seed;
  }
}

TEST(AntichainTest, SnapshotRoundTripWithPruning) {
  // Export with pruning on, resume with either setting; plus the random
  // sweep shape from lazy_determinize_test with the antichain on.
  for (std::uint32_t seed = 1; seed <= 40; ++seed) {
    InclusionQuery q = MakeInclusion(seed);
    LazySnapshot snapshot;
    LazyOptions export_options;
    export_options.export_snapshot = &snapshot;
    StatusOr<EmptinessOutcome> cold =
        LazyEmptiness(q.spec, nullptr, export_options);
    ASSERT_TRUE(cold.ok()) << "seed " << seed << ": "
                           << cold.status().ToString();
    EXPECT_TRUE(snapshot.complete) << "seed " << seed;
    EXPECT_TRUE(snapshot.antichain) << "seed " << seed;
    EXPECT_EQ(snapshot.empty, cold->empty) << "seed " << seed;

    for (const bool resume_antichain : {true, false}) {
      LazyOptions resume_options;
      resume_options.resume = &snapshot;
      resume_options.antichain = resume_antichain;
      StatusOr<EmptinessOutcome> warm =
          LazyEmptiness(q.spec, nullptr, resume_options);
      ASSERT_TRUE(warm.ok()) << "seed " << seed;
      EXPECT_EQ(warm->empty, cold->empty)
          << "seed " << seed << " resume_antichain " << resume_antichain;
      EXPECT_TRUE(warm->stats.resumed) << "seed " << seed;
    }

    // Complete-resume re-export is byte-stable: the snapshot is copied
    // verbatim, pruning markers included.
    LazySnapshot re_export;
    LazyOptions round;
    round.resume = &snapshot;
    round.export_snapshot = &re_export;
    StatusOr<EmptinessOutcome> again = LazyEmptiness(q.spec, nullptr, round);
    ASSERT_TRUE(again.ok()) << "seed " << seed;
    ASSERT_TRUE(re_export.complete) << "seed " << seed;
    EXPECT_EQ(re_export.antichain, snapshot.antichain) << "seed " << seed;
    EXPECT_EQ(re_export.pruned_configs, snapshot.pruned_configs)
        << "seed " << seed;
    ASSERT_EQ(re_export.det_tables.size(), snapshot.det_tables.size());
    for (std::size_t i = 0; i < snapshot.det_tables.size(); ++i) {
      EXPECT_EQ(re_export.det_tables[i].pool, snapshot.det_tables[i].pool)
          << "seed " << seed;
      EXPECT_EQ(re_export.det_tables[i].offsets,
                snapshot.det_tables[i].offsets)
          << "seed " << seed;
    }

    // A witness is still derivable when resuming a non-empty pruned run.
    if (!cold->empty) {
      SharedForest forest;
      LazyOptions witness_options;
      witness_options.resume = &snapshot;
      StatusOr<EmptinessOutcome> witnessed =
          LazyEmptiness(q.spec, &forest, witness_options);
      ASSERT_TRUE(witnessed.ok()) << "seed " << seed;
      ASSERT_GE(witnessed->witness, 0) << "seed " << seed;
      Arena arena;
      TreeBuilder builder(&arena);
      StatusOr<Node*> tree =
          forest.Materialize(witnessed->witness, &builder, 1 << 20);
      ASSERT_TRUE(tree.ok()) << "seed " << seed;
      EXPECT_TRUE(q.a->Accepts(*tree)) << "seed " << seed;
      EXPECT_FALSE(q.b->Accepts(*tree)) << "seed " << seed;
    }
  }
}

TEST(AntichainTest, PrunedSnapshotMarksAndCountsPruning) {
  PrunableQuery q = MakePrunable(/*k=*/5, /*pad=*/0);
  LazySnapshot snapshot;
  LazyOptions options;
  options.export_snapshot = &snapshot;
  StatusOr<EmptinessOutcome> out = LazyEmptiness(q.spec, nullptr, options);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_TRUE(snapshot.complete);
  EXPECT_TRUE(snapshot.antichain);
  EXPECT_EQ(snapshot.pruned_configs,
            out->stats.pruned_configs + out->stats.displaced_configs);
  EXPECT_GT(snapshot.pruned_configs, 0u);

  LazySnapshot unpruned;
  LazyOptions off;
  off.antichain = false;
  off.export_snapshot = &unpruned;
  ASSERT_TRUE(LazyEmptiness(q.spec, nullptr, off).ok());
  EXPECT_FALSE(unpruned.antichain);
  EXPECT_EQ(unpruned.pruned_configs, 0u);
}

TEST(AntichainParallelTest, FaultInjectionWithPruningIsCleanAndUntorn) {
  // The parallel fault sweep of lazy_determinize_test, with the antichain
  // layer explicitly on: every tripped run unwinds with
  // kResourceExhausted and exports no torn tables; untripped runs stay
  // correct. Pruning must not let a half-built antichain leak into a
  // snapshot or wedge an epoch barrier.
  for (std::uint32_t seed : {3u, 7u, 11u}) {
    InclusionQuery q = MakeInclusion(seed);
    StatusOr<EmptinessOutcome> reference = LazyEmptiness(q.spec, nullptr);
    ASSERT_TRUE(reference.ok()) << "seed " << seed;
    for (std::uint64_t fail_at = 1; fail_at <= 40; fail_at += 3) {
      Budget budget;
      budget.set_fail_at_checkpoint(fail_at);
      LazySnapshot snapshot;
      LazyOptions options;
      options.threads = 4;
      options.antichain = true;
      options.budget = &budget;
      options.export_snapshot = &snapshot;
      StatusOr<EmptinessOutcome> out = LazyEmptiness(q.spec, nullptr, options);
      if (budget.exhausted()) {
        EXPECT_FALSE(out.ok()) << "seed " << seed << " fail_at " << fail_at;
        EXPECT_EQ(out.status().code(), StatusCode::kResourceExhausted)
            << "seed " << seed << " fail_at " << fail_at << ": "
            << out.status().ToString();
        EXPECT_FALSE(snapshot.complete)
            << "seed " << seed << " fail_at " << fail_at;
        for (const LazySnapshot::DetTable& table : snapshot.det_tables) {
          EXPECT_TRUE(table.pool.empty())
              << "seed " << seed << " fail_at " << fail_at;
        }
      } else {
        ASSERT_TRUE(out.ok()) << "seed " << seed << " fail_at " << fail_at
                              << ": " << out.status().ToString();
        EXPECT_EQ(out->empty, reference->empty)
            << "seed " << seed << " fail_at " << fail_at;
        EXPECT_TRUE(snapshot.complete);
      }
    }
  }
}

TEST(AntichainParallelTest, PrunableFamilyAcrossThreadCounts) {
  // The constructed family under the parallel engine: the verdict is
  // schedule-independent even though which configs get pruned is not.
  PrunableQuery q = MakePrunable(/*k=*/6, /*pad=*/kDefaultDenseThreshold + 64);
  for (const int threads : kThreadSweep) {
    LazyOptions options;
    options.threads = threads;
    StatusOr<EmptinessOutcome> out = LazyEmptiness(q.spec, nullptr, options);
    ASSERT_TRUE(out.ok()) << "threads " << threads << ": "
                          << out.status().ToString();
    EXPECT_TRUE(out->empty) << "threads " << threads;
  }
}

}  // namespace
}  // namespace xtc
