#include "src/fa/nfa.h"

#include <vector>

#include <gtest/gtest.h>

namespace xtc {
namespace {

// (ab)* over {a=0, b=1}.
Nfa AbStar() {
  Nfa n(2);
  int s0 = n.AddState(/*initial=*/true, /*final=*/true);
  int s1 = n.AddState();
  n.AddTransition(s0, 0, s1);
  n.AddTransition(s1, 1, s0);
  return n;
}

TEST(NfaTest, AcceptsBasicWords) {
  Nfa n = AbStar();
  EXPECT_TRUE(n.Accepts(std::vector<int>{}));
  EXPECT_TRUE(n.Accepts(std::vector<int>{0, 1}));
  EXPECT_TRUE(n.Accepts(std::vector<int>{0, 1, 0, 1}));
  EXPECT_FALSE(n.Accepts(std::vector<int>{0}));
  EXPECT_FALSE(n.Accepts(std::vector<int>{1, 0}));
}

TEST(NfaTest, AcceptsEpsilon) {
  EXPECT_TRUE(AbStar().AcceptsEpsilon());
  Nfa strict(1);
  int s0 = strict.AddState(true, false);
  int s1 = strict.AddState(false, true);
  strict.AddTransition(s0, 0, s1);
  EXPECT_FALSE(strict.AcceptsEpsilon());
}

TEST(NfaTest, EmptinessAndShortestWord) {
  Nfa n(2);
  int s0 = n.AddState(true, false);
  int s1 = n.AddState(false, false);
  int s2 = n.AddState(false, true);
  n.AddTransition(s0, 0, s1);
  n.AddTransition(s1, 1, s2);
  EXPECT_FALSE(n.IsEmpty());
  auto word = n.ShortestAcceptedOver(nullptr);
  ASSERT_TRUE(word.has_value());
  EXPECT_EQ(*word, (std::vector<int>{0, 1}));

  Nfa empty(2);
  empty.AddState(true, false);
  EXPECT_TRUE(empty.IsEmpty());
  EXPECT_FALSE(empty.ShortestAcceptedOver(nullptr).has_value());
}

TEST(NfaTest, RestrictedAlphabetEmptiness) {
  Nfa n = AbStar();
  StateSet only_a = StateSet::FromBools({true, false});
  // Without b only the empty word remains.
  EXPECT_TRUE(n.AcceptsSomeOver(&only_a));
  auto w = n.ShortestAcceptedOver(&only_a);
  ASSERT_TRUE(w.has_value());
  EXPECT_TRUE(w->empty());
}

TEST(NfaTest, SymbolsOnAcceptingPaths) {
  Nfa n(3);
  int s0 = n.AddState(true, false);
  int s1 = n.AddState(false, true);
  int s2 = n.AddState(false, false);  // dead end
  n.AddTransition(s0, 0, s1);
  n.AddTransition(s0, 2, s2);  // symbol 2 leads nowhere useful
  StateSet used = n.SymbolsOnAcceptingPaths(nullptr);
  EXPECT_TRUE(used[0]);
  EXPECT_FALSE(used[1]);
  EXPECT_FALSE(used[2]);
}

TEST(NfaTest, FinitenessDetection) {
  EXPECT_TRUE(AbStar().AcceptsInfinitelyManyOver(nullptr));
  Nfa finite(1);
  int s0 = finite.AddState(true, false);
  int s1 = finite.AddState(false, true);
  finite.AddTransition(s0, 0, s1);
  EXPECT_FALSE(finite.AcceptsInfinitelyManyOver(nullptr));
  // A loop that is not on an accepting path does not count.
  Nfa off_path(1);
  int t0 = off_path.AddState(true, true);
  int t1 = off_path.AddState(false, false);
  off_path.AddTransition(t0, 0, t1);
  off_path.AddTransition(t1, 0, t1);
  EXPECT_FALSE(off_path.AcceptsInfinitelyManyOver(nullptr));
}

TEST(NfaTest, FinitenessRespectsAllowedSymbols) {
  Nfa n = AbStar();
  StateSet only_a = StateSet::FromBools({true, false});
  EXPECT_FALSE(n.AcceptsInfinitelyManyOver(&only_a));
}

TEST(NfaTest, IntersectionMatchesBothLanguages) {
  // (ab)* ∩ strings of length 2 = {ab}.
  Nfa len2(2);
  int u0 = len2.AddState(true, false);
  int u1 = len2.AddState(false, false);
  int u2 = len2.AddState(false, true);
  for (int sym = 0; sym < 2; ++sym) {
    len2.AddTransition(u0, sym, u1);
    len2.AddTransition(u1, sym, u2);
  }
  Nfa prod = Nfa::Intersection(AbStar(), len2);
  EXPECT_TRUE(prod.Accepts(std::vector<int>{0, 1}));
  EXPECT_FALSE(prod.Accepts(std::vector<int>{0, 0}));
  EXPECT_FALSE(prod.Accepts(std::vector<int>{}));
  EXPECT_FALSE(prod.Accepts(std::vector<int>{0, 1, 0, 1}));
}

TEST(NfaTest, UnionAcceptsEitherLanguage) {
  Nfa only_a(2);
  int a0 = only_a.AddState(true, false);
  int a1 = only_a.AddState(false, true);
  only_a.AddTransition(a0, 0, a1);
  Nfa only_b(2);
  int b0 = only_b.AddState(true, false);
  int b1 = only_b.AddState(false, true);
  only_b.AddTransition(b0, 1, b1);
  Nfa u = Nfa::Union(only_a, only_b);
  EXPECT_TRUE(u.Accepts(std::vector<int>{0}));
  EXPECT_TRUE(u.Accepts(std::vector<int>{1}));
  EXPECT_FALSE(u.Accepts(std::vector<int>{0, 1}));
}

TEST(NfaTest, SingleWord) {
  std::vector<int> word{2, 0, 1};
  Nfa n = Nfa::SingleWord(3, word);
  EXPECT_TRUE(n.Accepts(word));
  EXPECT_FALSE(n.Accepts(std::vector<int>{2, 0}));
  EXPECT_FALSE(n.Accepts(std::vector<int>{2, 0, 1, 1}));
  Nfa eps = Nfa::SingleWord(3, std::vector<int>{});
  EXPECT_TRUE(eps.Accepts(std::vector<int>{}));
  EXPECT_FALSE(eps.Accepts(std::vector<int>{0}));
}

TEST(NfaTest, ShiftedSymbols) {
  Nfa n = Nfa::SingleWord(2, std::vector<int>{0, 1});
  Nfa shifted = n.ShiftedSymbols(3, 5);
  EXPECT_TRUE(shifted.Accepts(std::vector<int>{3, 4}));
  EXPECT_FALSE(shifted.Accepts(std::vector<int>{0, 1}));
}

TEST(NfaTest, SizeMeasure) {
  Nfa n = AbStar();
  // 2 states + 2 symbols + 2 transitions.
  EXPECT_EQ(n.Size(), 6u);
}

}  // namespace
}  // namespace xtc
