// Deterministic fault-injection sweep: every budget checkpoint in every
// engine is a potential failure point. For each engine on a small instance
// we re-run with set_fail_at_checkpoint(n) for n = 1, 2, ... until the run
// completes without the fault firing (plus a geometric tail to hit deep
// points without quadratic cost). Each injected failure must surface as a
// clean kResourceExhausted — or be absorbed by a documented best-effort
// path (dropped counterexamples, the approximate fallback) — and never
// crash, abort, or leak (the sanitizer preset runs this test).

#include <gtest/gtest.h>

#include <functional>

#include "src/base/budget.h"
#include "src/core/almost_always.h"
#include "src/core/approximate.h"
#include "src/core/brute_force.h"
#include "src/core/minvast.h"
#include "src/core/paper_examples.h"
#include "src/core/relab.h"
#include "src/core/replus.h"
#include "src/core/trac.h"
#include "src/core/typecheck.h"
#include "src/fa/dfa.h"
#include "src/nta/analysis.h"
#include "src/nta/determinize.h"
#include "src/nta/lazy.h"
#include "src/nta/nta.h"
#include "src/nta/product.h"
#include "src/schema/witness.h"
#include "src/stream/doc_gen.h"
#include "src/stream/event_reader.h"
#include "src/stream/transform.h"
#include "src/stream/validate.h"
#include "src/workload/families.h"

namespace xtc {
namespace {

// Sweeps injection points of `run`. Returns the number of distinct points
// exercised. Invariant checked at every point: the run either reports the
// injected exhaustion as kResourceExhausted or absorbs it on a documented
// best-effort path (Status OK) — nothing else, and no aborts.
int SweepInjection(const char* name, const std::function<Status(Budget*)>& run,
                   std::uint64_t dense_cap = 80) {
  int points = 0;
  for (std::uint64_t n = 1; n <= dense_cap; ++n) {
    Budget b;
    b.set_fail_at_checkpoint(n);
    Status s = run(&b);
    if (b.cause() != ExhaustionCause::kInjected) {
      // The run finished before reaching checkpoint n: sweep complete.
      EXPECT_TRUE(s.ok()) << name << " n=" << n << ": " << s.ToString();
      return points;
    }
    EXPECT_TRUE(s.ok() || s.code() == StatusCode::kResourceExhausted)
        << name << " n=" << n << ": " << s.ToString();
    ++points;
  }
  // Geometric tail: deep failure points, sampled.
  for (std::uint64_t n = dense_cap * 2; n < (std::uint64_t{1} << 22); n *= 2) {
    Budget b;
    b.set_fail_at_checkpoint(n);
    Status s = run(&b);
    if (b.cause() != ExhaustionCause::kInjected) {
      EXPECT_TRUE(s.ok()) << name << " n=" << n << ": " << s.ToString();
      break;
    }
    EXPECT_TRUE(s.ok() || s.code() == StatusCode::kResourceExhausted)
        << name << " n=" << n << ": " << s.ToString();
    ++points;
  }
  return points;
}

TEST(FaultInjectionTest, SweepAllEnginesCleanly) {
  int total = 0;

  {
    PaperExample ex = MakeBookExample(/*with_summary=*/true);
    total += SweepInjection("trac", [&](Budget* b) {
      TypecheckOptions opts;
      opts.budget = b;
      return TypecheckTrac(*ex.transducer, *ex.din, *ex.dout, opts).status();
    });
  }
  {
    // Failing instance with counterexample construction: exercises the
    // best-effort witness paths.
    PaperExample ex = MakeBookExample(/*with_summary=*/false);
    EXPECT_TRUE(ex.dout->SetRule("book", "title (chapter title)+").ok());
    total += SweepInjection("trac-cex", [&](Budget* b) {
      TypecheckOptions opts;
      opts.budget = b;
      return TypecheckTrac(*ex.transducer, *ex.din, *ex.dout, opts).status();
    });
  }
  {
    PaperExample ex = RePlusCopyFamily(4);
    total += SweepInjection("replus", [&](Budget* b) {
      TypecheckOptions opts;
      opts.budget = b;
      return TypecheckRePlus(*ex.transducer, *ex.din, *ex.dout, opts).status();
    });
    total += SweepInjection("minvast", [&](Budget* b) {
      TypecheckOptions opts;
      opts.budget = b;
      return TypecheckMinVast(*ex.transducer, *ex.din, *ex.dout, opts)
          .status();
    });
  }
  {
    PaperExample ex = RelabFamily(3);
    total += SweepInjection("delrelab", [&](Budget* b) {
      TypecheckOptions opts;
      opts.budget = b;
      return TypecheckDelRelab(*ex.transducer, *ex.din, *ex.dout, opts)
          .status();
    });
  }
  {
    // The lazy frontier engine, directly: every discovered-state expansion
    // checkpoints the budget ("LazyEmptiness"), and the eager reference on
    // the same spec for comparison.
    PaperExample ex = RelabFamily(3);
    Nta a = Nta::FromDtd(*ex.din);
    Nta c = Nta::FromDtd(*ex.dout);
    total += SweepInjection("lazy-emptiness", [&](Budget* b) {
      LazyProductSpec spec;
      spec.AddNta(&a);
      spec.AddDeterminized(&c, /*complement=*/true);
      LazyOptions opts;
      opts.budget = b;
      return LazyEmptiness(spec, nullptr, opts).status();
    });
    total += SweepInjection("eager-emptiness", [&](Budget* b) {
      LazyProductSpec spec;
      spec.AddNta(&a);
      spec.AddDeterminized(&c, /*complement=*/true);
      LazyOptions opts;
      opts.budget = b;
      return EagerEmptiness(spec, nullptr, opts).status();
    });
  }
  {
    PaperExample ex = MakeBookExample(/*with_summary=*/false);
    total += SweepInjection("brute-force", [&](Budget* b) {
      BruteForceOptions bf;
      bf.max_depth = 3;
      bf.max_width = 3;
      bf.max_trees = 5000;
      bf.budget = b;
      return TypecheckBruteForce(*ex.transducer, *ex.din, *ex.dout, bf)
          .status();
    });
  }
  {
    PaperExample ex = FilterFamily(2);
    total += SweepInjection("almost-always", [&](Budget* b) {
      return TypechecksAlmostAlways(*ex.transducer, *ex.din, *ex.dout,
                                    /*max_states=*/200000, b)
          .status();
    });
  }
  {
    PaperExample ex = MakeBookExample(/*with_summary=*/true);
    total += SweepInjection("approximate", [&](Budget* b) {
      return TypecheckApproximate(*ex.transducer, *ex.din, *ex.dout,
                                  /*max_dfa_states=*/1 << 14, b)
          .status();
    });
    // Library-level governed primitives.
    Nta ain = Nta::FromDtd(*ex.din);
    total += SweepInjection("determinize", [&](Budget* b) {
      return DeterminizeToDtac(ain, /*max_states=*/200000, b).status();
    });
    total += SweepInjection("nta-analysis", [&](Budget* b) {
      XTC_ASSIGN_OR_RETURN(Nta product, Intersect(ain, ain, b));
      XTC_ASSIGN_OR_RETURN(bool empty, IsEmptyLanguage(product, b));
      (void)empty;
      return IsFiniteLanguage(product, b).status();
    });
    total += SweepInjection("witness", [&](Budget* b) {
      XTC_RETURN_IF_ERROR(MinimalTreeCosts(*ex.din, b).status());
      Arena arena;
      TreeBuilder builder(&arena);
      return MinimalValidTree(*ex.din, ex.din->start(), &builder, b).status();
    });
  }

  // The acceptance bar: the sweep must exercise at least 200 distinct
  // checkpoint failure points across the engines.
  EXPECT_GE(total, 200) << "fault-injection sweep coverage shrank";
}

// A fault injected mid-exploration must never leave a partially-interned
// state table observable to a retry: the export target — including one
// already holding a prior good snapshot, as the compile cache's entries do
// — stays byte-for-byte untouched on every failure, and a retry resuming
// from it still agrees with the eager reference.
TEST(FaultInjectionTest, LazyInjectionLeavesNoPartialSnapshotBehind) {
  PaperExample ex = RelabFamily(3);
  Nta a = Nta::FromDtd(*ex.din);
  Nta c = Nta::FromDtd(*ex.dout);
  auto make_spec = [&] {
    LazyProductSpec spec;
    spec.AddNta(&a);
    spec.AddDeterminized(&c, /*complement=*/true);
    return spec;
  };
  auto tables_equal = [](const LazySnapshot& x, const LazySnapshot& y) {
    if (x.complete != y.complete || x.empty != y.empty ||
        x.det_tables.size() != y.det_tables.size()) {
      return false;
    }
    for (std::size_t i = 0; i < x.det_tables.size(); ++i) {
      if (x.det_tables[i].pool != y.det_tables[i].pool ||
          x.det_tables[i].offsets != y.det_tables[i].offsets) {
        return false;
      }
    }
    return true;
  };

  LazyProductSpec spec = make_spec();
  StatusOr<EmptinessOutcome> eager = EagerEmptiness(spec, nullptr);
  ASSERT_TRUE(eager.ok());

  // A clean run exporting the reference snapshot.
  LazySnapshot good;
  LazyOptions export_opts;
  export_opts.export_snapshot = &good;
  ASSERT_TRUE(LazyEmptiness(spec, nullptr, export_opts).ok());
  ASSERT_TRUE(good.complete);

  int injected = 0;
  for (std::uint64_t n = 1; n <= 200; ++n) {
    Budget b;
    b.set_fail_at_checkpoint(n);
    LazySnapshot prior = good;  // the cached artifact a retry would see
    LazyOptions opts;
    opts.budget = &b;
    opts.export_snapshot = &prior;
    StatusOr<EmptinessOutcome> out = LazyEmptiness(spec, nullptr, opts);
    if (b.cause() != ExhaustionCause::kInjected) break;
    ++injected;
    ASSERT_FALSE(out.ok()) << "n=" << n;
    EXPECT_EQ(out.status().code(), StatusCode::kResourceExhausted);
    // The failed run must not have touched the prior snapshot...
    EXPECT_TRUE(tables_equal(prior, good)) << "n=" << n;
    // ...and a retry resuming from it agrees with the eager reference.
    LazyOptions retry_opts;
    retry_opts.resume = &prior;
    StatusOr<EmptinessOutcome> retry = LazyEmptiness(spec, nullptr, retry_opts);
    ASSERT_TRUE(retry.ok()) << "n=" << n << ": " << retry.status().ToString();
    EXPECT_EQ(retry->empty, eager->empty) << "n=" << n;
  }
  EXPECT_GT(injected, 0) << "no checkpoint was ever reached";
}

// The front door with approximate_fallback enabled: an injected exhaustion
// in the exact engine must be absorbed into a degraded (approximate) result
// — the caller sees OK plus telemetry, never a crash.
TEST(FaultInjectionTest, FrontDoorFallbackAbsorbsInjectedFaults) {
  PaperExample ex = MakeBookExample(/*with_summary=*/true);
  int degraded = 0;
  for (std::uint64_t n = 1; n <= 60; ++n) {
    Budget b;
    b.set_fail_at_checkpoint(n);
    TypecheckOptions opts;
    opts.budget = &b;
    opts.approximate_fallback = true;
    StatusOr<TypecheckResult> r =
        Typecheck(*ex.transducer, *ex.din, *ex.dout, opts);
    if (b.cause() != ExhaustionCause::kInjected) {
      ASSERT_TRUE(r.ok());
      EXPECT_FALSE(r->approximate);
      break;
    }
    ASSERT_TRUE(r.ok()) << "n=" << n << ": " << r.status().ToString();
    if (r->approximate) {
      ++degraded;
      EXPECT_EQ(r->exact_status.code(), StatusCode::kResourceExhausted);
      // Degraded runs never fabricate a counterexample: a false verdict may
      // be a false alarm (the approximation loses copy correlation).
      EXPECT_EQ(r->counterexample, nullptr);
    }
  }
  EXPECT_GT(degraded, 0) << "no injection ever reached the fallback path";
}

// The streaming pipeline (src/stream/): one budget governs schema compile,
// the event reader (per-event checks plus byte accounting), the validator
// and the transducer gates. Every mid-stream injection point must surface
// as a clean kResourceExhausted — never a crash, a hang, or a torn event.
TEST(FaultInjectionTest, StreamingPipelineSweepsCleanly) {
  const std::string doc =
      RenderDoc(StreamDocSpec{StreamDocSpec::Shape::kMixed, 3000});
  auto run = [&](Budget* b) -> Status {
    Alphabet alphabet;
    int root = alphabet.Intern("root");
    alphabet.Intern("section");
    alphabet.Intern("item");
    Dtd dtd(&alphabet, root);
    Status rule = dtd.SetRule("root", "(section|item)*");
    if (!rule.ok()) return rule;
    rule = dtd.SetRule("section", "(section|item)*");
    if (!rule.ok()) return rule;
    rule = dtd.SetRule("item", "%");
    if (!rule.ok()) return rule;
    Status compiled = dtd.Compile(b);
    if (!compiled.ok()) return compiled;

    Transducer t(&alphabet);
    t.SetInitial(t.AddState("m"));
    XTC_CHECK(t.SetRuleFromString("m", "root", "root(m)").ok());
    XTC_CHECK(t.SetRuleFromString("m", "section", "section(m)").ok());
    XTC_CHECK(t.SetRuleFromString("m", "item", "item").ok());

    XmlEventReader::Options reader_options;
    reader_options.budget = b;
    XmlEventReader reader(&alphabet, reader_options);
    StreamValidator::Options validator_options;
    validator_options.budget = b;
    StreamValidator validator(&dtd, validator_options);
    std::string out;
    StringSink sink(&out);
    StreamTransducer::Options transducer_options;
    transducer_options.budget = b;
    StatusOr<std::unique_ptr<StreamTransducer>> exec =
        StreamTransducer::Create(&t, &sink, transducer_options);
    if (!exec.ok()) return exec.status();

    std::size_t fed = 0;
    XmlEvent event;
    while (true) {
      StatusOr<XmlEventReader::ReadResult> r = reader.Next(&event);
      if (!r.ok()) return r.status();
      if (*r == XmlEventReader::ReadResult::kEvent) {
        Status s = validator.OnEvent(event);
        if (!s.ok()) return s;
        s = (*exec)->OnEvent(event);
        if (!s.ok()) return s;
        continue;
      }
      if (*r == XmlEventReader::ReadResult::kEndOfDocument) break;
      if (fed < doc.size()) {
        std::size_t n = std::min<std::size_t>(1024, doc.size() - fed);
        reader.Push(std::string_view(doc).substr(fed, n));
        fed += n;
      } else {
        reader.FinishInput();
      }
    }
    Status finish = (*exec)->Finish();
    if (!finish.ok()) return finish;
    XTC_CHECK(validator.AtEndOfDocument());
    return Status::Ok();
  };
  int points = SweepInjection("stream-pipeline", run);
  EXPECT_GT(points, 0) << "no stream checkpoint was ever reached";
}

}  // namespace
}  // namespace xtc
