#include "src/workload/generators.h"

#include <gtest/gtest.h>

#include "src/td/widths.h"
#include "src/workload/families.h"

namespace xtc {
namespace {

TEST(GeneratorsTest, RandomInstancesAreWellFormed) {
  RandomOptions opts;
  for (std::uint32_t seed = 0; seed < 20; ++seed) {
    PaperExample ex = RandomInstance(seed, opts, /*re_plus=*/false);
    ASSERT_NE(ex.transducer, nullptr);
    EXPECT_GE(ex.transducer->initial(), 0);
    EXPECT_EQ(ex.transducer->alphabet(), ex.alphabet.get());
    EXPECT_EQ(ex.din->alphabet(), ex.alphabet.get());
    // The initial rule for every symbol, if present, is a single tree.
    EXPECT_FALSE(ex.transducer->HasSelectors());
  }
}

TEST(GeneratorsTest, RandomRePlusDtdsAreRePlusAndInhabited) {
  RandomOptions opts;
  for (std::uint32_t seed = 0; seed < 20; ++seed) {
    PaperExample ex = RandomInstance(seed, opts, /*re_plus=*/true);
    EXPECT_TRUE(ex.din->IsRePlusDtd());
    EXPECT_TRUE(ex.dout->IsRePlusDtd());
    EXPECT_FALSE(ex.din->LanguageEmpty());
  }
}

TEST(GeneratorsTest, SeedsAreDeterministic) {
  RandomOptions opts;
  PaperExample a = RandomInstance(7, opts, false);
  PaperExample b = RandomInstance(7, opts, false);
  EXPECT_EQ(a.transducer->Size(), b.transducer->Size());
  EXPECT_EQ(a.din->Size(), b.din->Size());
  PaperExample c = RandomInstance(8, opts, false);
  // Different seeds virtually always differ somewhere.
  EXPECT_TRUE(a.transducer->Size() != c.transducer->Size() ||
              a.din->Size() != c.din->Size() ||
              a.dout->Size() != c.dout->Size());
}

TEST(GeneratorsTest, RandomTreesRespectBounds) {
  std::mt19937 rng(3);
  Arena arena;
  TreeBuilder builder(&arena);
  for (int i = 0; i < 50; ++i) {
    Node* t = RandomTree(&rng, 3, 4, 3, &builder);
    EXPECT_LE(Depth(t), 4);
    EXPECT_LT(t->label, 3);
  }
}

TEST(FamiliesTest, AllFamiliesProduceConsistentAlphabets) {
  for (PaperExample ex :
       {FilterFamily(3), FailingFilterFamily(3), WidthFamily(2, 2),
        RelabFamily(3), RePlusCopyFamily(3), XPathChainFamily(3),
        NfaSchemaFamily(3)}) {
    ASSERT_NE(ex.alphabet, nullptr);
    ASSERT_NE(ex.transducer, nullptr);
    ASSERT_NE(ex.din, nullptr);
    ASSERT_NE(ex.dout, nullptr);
    EXPECT_EQ(ex.transducer->alphabet(), ex.alphabet.get());
    EXPECT_EQ(ex.din->alphabet(), ex.alphabet.get());
    EXPECT_EQ(ex.dout->alphabet(), ex.alphabet.get());
    EXPECT_FALSE(ex.din->LanguageEmpty());
  }
}

TEST(FamiliesTest, WidthFamilyWidthsMatchParameters) {
  for (int c : {1, 3}) {
    for (int k : {0, 2}) {
      PaperExample ex = WidthFamily(c, k);
      WidthAnalysis w = AnalyzeWidths(*ex.transducer);
      EXPECT_TRUE(w.dpw_bounded);
      EXPECT_EQ(w.deletion_path_width, static_cast<uint64_t>(1) << k);
      EXPECT_GE(w.copying_width, c);
    }
  }
}

TEST(FamiliesTest, NfaSchemaFamilyIsNondeterministic) {
  PaperExample ex = NfaSchemaFamily(5);
  EXPECT_FALSE(ex.din->IsDfaDtd());
  // The subset construction for "5th letter from the end" needs 2^5 states.
  const Dfa& det = ex.din->RuleDfa(*ex.alphabet->Find("r"));
  EXPECT_GE(det.num_states(), 32);
}

}  // namespace
}  // namespace xtc
