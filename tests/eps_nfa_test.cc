#include "src/fa/eps_nfa.h"

#include <vector>

#include <gtest/gtest.h>

namespace xtc {
namespace {

std::vector<int> W(std::initializer_list<int> xs) { return xs; }

TEST(EpsNfaTest, PureEpsilonPathAccepts) {
  EpsNfa e(2);
  int s0 = e.AddState(/*initial=*/true);
  int s1 = e.AddState();
  int s2 = e.AddState(false, /*final=*/true);
  e.AddEdge(s0, -1, s1);
  e.AddEdge(s1, -1, s2);
  Nfa n = e.Build();
  EXPECT_TRUE(n.Accepts(W({})));
  EXPECT_FALSE(n.Accepts(W({0})));
}

TEST(EpsNfaTest, MixedEdges) {
  // epsilon, symbol, epsilon: accepts exactly {0}.
  EpsNfa e(2);
  int s0 = e.AddState(true);
  int s1 = e.AddState();
  int s2 = e.AddState();
  int s3 = e.AddState(false, true);
  e.AddEdge(s0, -1, s1);
  e.AddEdge(s1, 0, s2);
  e.AddEdge(s2, -1, s3);
  Nfa n = e.Build();
  EXPECT_TRUE(n.Accepts(W({0})));
  EXPECT_FALSE(n.Accepts(W({})));
  EXPECT_FALSE(n.Accepts(W({1})));
  EXPECT_FALSE(n.Accepts(W({0, 0})));
}

TEST(EpsNfaTest, EpsilonCyclesTerminate) {
  EpsNfa e(1);
  int s0 = e.AddState(true);
  int s1 = e.AddState();
  e.AddEdge(s0, -1, s1);
  e.AddEdge(s1, -1, s0);
  e.AddEdge(s1, 0, s1);
  e.SetFinal(s1);
  Nfa n = e.Build();
  EXPECT_TRUE(n.Accepts(W({})));
  EXPECT_TRUE(n.Accepts(W({0, 0, 0})));
}

TEST(EpsNfaTest, BuildPortSelectsSubLanguage) {
  // A shared automaton with two chains: a-chain (s0 -> s1) and b-chain
  // (s2 -> s3), plus a trailing epsilon hop s3 -> s4.
  EpsNfa e(2);
  int s0 = e.AddState();
  int s1 = e.AddState();
  int s2 = e.AddState();
  int s3 = e.AddState();
  int s4 = e.AddState();
  e.AddEdge(s0, 0, s1);
  e.AddEdge(s2, 1, s3);
  e.AddEdge(s3, -1, s4);
  Nfa a_lang = e.BuildPort(s0, s1);
  EXPECT_TRUE(a_lang.Accepts(W({0})));
  EXPECT_FALSE(a_lang.Accepts(W({1})));
  // Acceptance via the trailing epsilon hop (the regression the
  // approximate engine hit): s2 -> s4 must accept {1}.
  Nfa b_lang = e.BuildPort(s2, s4);
  EXPECT_TRUE(b_lang.Accepts(W({1})));
  EXPECT_FALSE(b_lang.Accepts(W({})));
  // Same-state port accepts epsilon.
  Nfa eps = e.BuildPort(s0, s0);
  EXPECT_TRUE(eps.Accepts(W({})));
}

}  // namespace
}  // namespace xtc
