#include <gtest/gtest.h>

#include "src/core/nfa_dtd.h"
#include "src/core/paper_examples.h"
#include "src/core/typecheck.h"
#include "src/td/exec.h"
#include "src/tree/codec.h"
#include "src/workload/families.h"

namespace xtc {
namespace {

TEST(IntegrationTest, DispatcherHandlesTheBookScenario) {
  PaperExample ex = MakeBookExample(true);
  StatusOr<TypecheckResult> r = Typecheck(*ex.transducer, *ex.din, *ex.dout);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->typechecks);
}

TEST(IntegrationTest, DispatcherCompilesXPathSelectors) {
  // Example 22 (XPath ToC) against the tight ToC schema: Theorem 23's
  // compilation followed by the Lemma 14 engine.
  PaperExample ex = MakeExample22();
  StatusOr<TypecheckResult> r = Typecheck(*ex.transducer, *ex.din, *ex.dout);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->typechecks);
}

TEST(IntegrationTest, DispatcherPicksRePlusEngineForUnboundedCopying) {
  PaperExample ex = RePlusCopyFamily(10);
  StatusOr<TypecheckResult> r = Typecheck(*ex.transducer, *ex.din, *ex.dout);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->typechecks);
}

TEST(IntegrationTest, DispatcherDeterminizesNfaSchemas) {
  PaperExample ex = NfaSchemaFamily(4);
  EXPECT_FALSE(ex.din->IsDfaDtd());
  StatusOr<TypecheckResult> r = Typecheck(*ex.transducer, *ex.din, *ex.dout);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->typechecks);
}

TEST(IntegrationTest, DeterminizationBudgetIsEnforced) {
  PaperExample ex = NfaSchemaFamily(14);
  StatusOr<TypecheckResult> r = TypecheckViaDeterminization(
      *ex.transducer, *ex.din, *ex.dout, {}, /*max_dfa_states=*/256);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST(IntegrationTest, EndToEndXmlPipeline) {
  // Parse documents from XML, transform, serialize, and typecheck.
  PaperExample ex = MakeBookExample(false);
  Arena arena;
  TreeBuilder builder(&arena);
  StatusOr<Node*> doc = ParseXml(
      "<book><title/><author/><chapter><title/><intro/>"
      "<section><title/><paragraph/></section></chapter></book>",
      ex.alphabet.get(), &builder);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  ASSERT_TRUE(ex.din->Valid(*doc));
  Node* out = Apply(*ex.transducer, *doc, &builder);
  ASSERT_NE(out, nullptr);
  EXPECT_TRUE(ex.dout->Valid(out));
  EXPECT_EQ(ToXml(out, *ex.alphabet),
            "<book><title/><chapter/><title/><title/></book>");
  StatusOr<TypecheckResult> r = Typecheck(*ex.transducer, *ex.din, *ex.dout);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->typechecks);
}

TEST(IntegrationTest, IntractableFragmentIsReported) {
  // A transducer that copies while recursively deleting over non-RE+
  // schemas: the dispatcher refuses with a precise diagnosis.
  Alphabet alphabet;
  alphabet.Intern("r");
  alphabet.Intern("a");
  alphabet.Intern("b");
  Dtd din(&alphabet, 0);
  ASSERT_TRUE(din.SetRule("r", "a | b").ok());
  ASSERT_TRUE(din.SetRule("a", "a | b | %").ok());
  Dtd dout(&alphabet, 0);
  ASSERT_TRUE(dout.SetRule("r", "(a | b)*").ok());
  Transducer t(&alphabet);
  t.AddState("q0");
  t.AddState("q");
  t.SetInitial(0);
  ASSERT_TRUE(t.SetRuleFromString("q0", "r", "r(q)").ok());
  ASSERT_TRUE(t.SetRuleFromString("q", "a", "q q").ok());
  ASSERT_TRUE(t.SetRuleFromString("q", "b", "b").ok());
  StatusOr<TypecheckResult> r = Typecheck(t, din, dout);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnimplemented);
}

TEST(IntegrationTest, CounterexamplePipelineProducesXml) {
  PaperExample ex = FailingFilterFamily(2);
  StatusOr<TypecheckResult> r = Typecheck(*ex.transducer, *ex.din, *ex.dout);
  ASSERT_TRUE(r.ok());
  ASSERT_FALSE(r->typechecks);
  ASSERT_NE(r->counterexample, nullptr);
  std::string xml = ToXml(r->counterexample, *ex.alphabet);
  EXPECT_FALSE(xml.empty());
  // Round-trip the counterexample and re-verify.
  Arena arena;
  TreeBuilder builder(&arena);
  StatusOr<Node*> back = ParseXml(xml, ex.alphabet.get(), &builder);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(VerifyCounterexample(*ex.transducer, *ex.din, *ex.dout, *back));
}

}  // namespace
}  // namespace xtc
