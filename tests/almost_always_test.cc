#include "src/core/almost_always.h"

#include <gtest/gtest.h>

#include "src/core/paper_examples.h"
#include "src/workload/families.h"

namespace xtc {
namespace {

TEST(AlmostAlwaysTest, TypecheckingInstancesAreAlmostAlways) {
  PaperExample ex = MakeBookExample(true);
  StatusOr<bool> r = TypechecksAlmostAlways(*ex.transducer, *ex.din, *ex.dout);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(*r);
}

TEST(AlmostAlwaysTest, InfinitelyManyCounterexamplesDetected) {
  // Every FailingFilterFamily document with exactly one title violates, and
  // there are infinitely many of them (arbitrarily deep single-section
  // chains for n >= 2... for n = 1 width pumping on sec0 still gives only
  // one-title documents? No: each sec0 contributes a title, so one-title
  // documents have exactly one sec0 — but author-free root rule sec0+ has
  // no other pumping dimension. Use a family with an explicit pump below.)
  Alphabet* alphabet;
  PaperExample ex;
  ex.alphabet = std::make_shared<Alphabet>();
  alphabet = ex.alphabet.get();
  alphabet->Intern("r");
  alphabet->Intern("a");
  alphabet->Intern("b");
  ex.din = std::make_shared<Dtd>(alphabet, *alphabet->Find("r"));
  ASSERT_TRUE(ex.din->SetRule("r", "a b*").ok());
  ex.transducer = std::make_shared<Transducer>(alphabet);
  ex.transducer->AddState("q0");
  ex.transducer->AddState("q");
  ex.transducer->SetInitial(0);
  ASSERT_TRUE(ex.transducer->SetRuleFromString("q0", "r", "r(q)").ok());
  ASSERT_TRUE(ex.transducer->SetRuleFromString("q", "a", "a").ok());
  // b's are deleted entirely: infinitely many inputs map to r(a).
  ex.dout = std::make_shared<Dtd>(alphabet, *alphabet->Find("r"));
  ASSERT_TRUE(ex.dout->SetRule("r", "a a").ok());  // never satisfied
  StatusOr<bool> r = TypechecksAlmostAlways(*ex.transducer, *ex.din, *ex.dout);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);
}

TEST(AlmostAlwaysTest, FiniteCounterexampleSetIsAlmostAlways) {
  // d_in admits exactly two documents: r(a) and r(a b); only r(a) violates.
  PaperExample ex;
  ex.alphabet = std::make_shared<Alphabet>();
  Alphabet* alphabet = ex.alphabet.get();
  alphabet->Intern("r");
  alphabet->Intern("a");
  alphabet->Intern("b");
  ex.din = std::make_shared<Dtd>(alphabet, *alphabet->Find("r"));
  ASSERT_TRUE(ex.din->SetRule("r", "a b?").ok());
  ex.transducer = std::make_shared<Transducer>(alphabet);
  ex.transducer->AddState("q0");
  ex.transducer->AddState("q");
  ex.transducer->SetInitial(0);
  ASSERT_TRUE(ex.transducer->SetRuleFromString("q0", "r", "r(q)").ok());
  ASSERT_TRUE(ex.transducer->SetRuleFromString("q", "a", "a").ok());
  ASSERT_TRUE(ex.transducer->SetRuleFromString("q", "b", "b").ok());
  ex.dout = std::make_shared<Dtd>(alphabet, *alphabet->Find("r"));
  ASSERT_TRUE(ex.dout->SetRule("r", "a b").ok());
  // r(a) violates (output r(a)); r(a b) conforms. One counterexample only.
  StatusOr<bool> almost =
      TypechecksAlmostAlways(*ex.transducer, *ex.din, *ex.dout);
  ASSERT_TRUE(almost.ok());
  EXPECT_TRUE(*almost);
}

TEST(AlmostAlwaysTest, EmptyInputLanguage) {
  Alphabet alphabet;
  alphabet.Intern("r");
  Dtd din(&alphabet, 0);
  ASSERT_TRUE(din.SetRule("r", "r").ok());
  Dtd dout(&alphabet, 0);
  Transducer t(&alphabet);
  t.AddState("q0");
  t.SetInitial(0);
  StatusOr<bool> r = TypechecksAlmostAlways(t, din, dout);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);
}

}  // namespace
}  // namespace xtc
