#include "src/schema/dtd.h"

#include <gtest/gtest.h>

#include "src/schema/witness.h"
#include "src/tree/codec.h"

namespace xtc {
namespace {

class DtdTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (const char* s : {"book", "title", "author", "chapter", "intro",
                          "section", "paragraph"}) {
      alphabet_.Intern(s);
    }
    dtd_ = std::make_unique<Dtd>(&alphabet_, *alphabet_.Find("book"));
    ASSERT_TRUE(dtd_->SetRule("book", "title author+ chapter+").ok());
    ASSERT_TRUE(dtd_->SetRule("chapter", "title intro section+").ok());
    ASSERT_TRUE(dtd_->SetRule("section", "title paragraph+ section*").ok());
  }

  Node* Tree(const char* term) {
    StatusOr<Node*> t = ParseTerm(term, &alphabet_, &builder_);
    EXPECT_TRUE(t.ok()) << t.status().ToString();
    return *t;
  }

  Alphabet alphabet_;
  Arena arena_;
  TreeBuilder builder_{&arena_};
  std::unique_ptr<Dtd> dtd_;
};

TEST_F(DtdTest, ValidatesThePaperDocument) {
  // Fig. 3's document (slightly reduced).
  Node* doc = Tree(
      "book(title author chapter(title intro section(title paragraph)) "
      "chapter(title intro section(title paragraph section(title "
      "paragraph))))");
  EXPECT_TRUE(dtd_->Valid(doc));
}

TEST_F(DtdTest, RejectsInvalidDocuments) {
  EXPECT_FALSE(dtd_->Valid(Tree("book(title chapter(title intro "
                                "section(title paragraph)))")));  // no author
  EXPECT_FALSE(dtd_->Valid(Tree("title")));                       // wrong root
  EXPECT_FALSE(
      dtd_->Valid(Tree("book(title author chapter(title intro))")));  // no sec
  // Undeclared symbols default to leaves.
  EXPECT_FALSE(dtd_->Valid(Tree(
      "book(title(intro) author chapter(title intro section(title "
      "paragraph)))")));
}

TEST_F(DtdTest, LocallyValidIgnoresStartSymbol) {
  Node* chapter = Tree("chapter(title intro section(title paragraph))");
  EXPECT_FALSE(dtd_->Valid(chapter));
  EXPECT_TRUE(dtd_->LocallyValid(chapter));
}

TEST_F(DtdTest, PartlySatisfiesHedges) {
  Hedge h{Tree("chapter(title intro section(title paragraph))"),
          Tree("author")};
  EXPECT_TRUE(dtd_->PartlySatisfies(h));
  Hedge bad{Tree("chapter(intro)")};
  EXPECT_FALSE(dtd_->PartlySatisfies(bad));
}

TEST_F(DtdTest, RuleKindsAndClassPredicates) {
  EXPECT_EQ(dtd_->rule_kind(*alphabet_.Find("book")), Dtd::RuleKind::kRePlus);
  EXPECT_EQ(dtd_->rule_kind(*alphabet_.Find("title")),
            Dtd::RuleKind::kEpsilonDefault);
  // The section rule uses section*, so the book DTD is deterministic but
  // not a DTD(RE+).
  EXPECT_EQ(dtd_->rule_kind(*alphabet_.Find("section")),
            Dtd::RuleKind::kDetRegex);
  EXPECT_FALSE(dtd_->IsRePlusDtd());
  EXPECT_TRUE(dtd_->IsDfaDtd());
  ASSERT_TRUE(dtd_->SetRule("section", "title paragraph+").ok());
  EXPECT_TRUE(dtd_->IsRePlusDtd());
  ASSERT_TRUE(dtd_->SetRule("book", "(title | author)* title").ok());
  EXPECT_FALSE(dtd_->IsRePlusDtd());
  EXPECT_FALSE(dtd_->IsDfaDtd());  // not one-unambiguous
}

TEST_F(DtdTest, InhabitedSymbolsAndEmptiness) {
  const StateSet& inhabited = dtd_->InhabitedSymbols();
  for (int s = 0; s < dtd_->num_symbols(); ++s) {
    EXPECT_TRUE(inhabited[static_cast<std::size_t>(s)]);
  }
  EXPECT_FALSE(dtd_->LanguageEmpty());
  // A recursive mandatory rule empties its symbol.
  Alphabet a2;
  a2.Intern("x");
  a2.Intern("y");
  Dtd rec(&a2, *a2.Find("x"));
  ASSERT_TRUE(rec.SetRule("x", "x").ok());
  EXPECT_FALSE(rec.InhabitedSymbols()[0]);
  EXPECT_TRUE(rec.InhabitedSymbols()[1]);
  EXPECT_TRUE(rec.LanguageEmpty());
}

TEST_F(DtdTest, UsableChildrenAndWords) {
  StateSet children = dtd_->UsableChildren(*alphabet_.Find("book"));
  EXPECT_TRUE(children[static_cast<std::size_t>(*alphabet_.Find("title"))]);
  EXPECT_TRUE(children[static_cast<std::size_t>(*alphabet_.Find("chapter"))]);
  EXPECT_FALSE(children[static_cast<std::size_t>(*alphabet_.Find("section"))]);

  auto word = dtd_->ShortestUsableWord(*alphabet_.Find("book"));
  ASSERT_TRUE(word.has_value());
  EXPECT_EQ(word->size(), 3u);  // title author chapter

  auto with = dtd_->UsableWordContaining(*alphabet_.Find("section"),
                                         *alphabet_.Find("section"));
  ASSERT_TRUE(with.has_value());
  // title paragraph section is the shortest section word with a section.
  EXPECT_EQ(with->size(), 3u);
  EXPECT_EQ((*with)[2], *alphabet_.Find("section"));
}

TEST_F(DtdTest, MinimalTreeCostsAndWitness) {
  std::vector<uint64_t> costs = MinimalTreeCosts(*dtd_);
  EXPECT_EQ(costs[static_cast<std::size_t>(*alphabet_.Find("title"))], 1u);
  // section: section(title paragraph) = 3 nodes.
  EXPECT_EQ(costs[static_cast<std::size_t>(*alphabet_.Find("section"))], 3u);
  // chapter: chapter(title intro section(title paragraph)) = 6.
  EXPECT_EQ(costs[static_cast<std::size_t>(*alphabet_.Find("chapter"))], 6u);
  Node* witness = MinimalValidTree(*dtd_, dtd_->start(), &builder_);
  EXPECT_TRUE(dtd_->Valid(witness));
  EXPECT_EQ(NodeCount(witness),
            costs[static_cast<std::size_t>(dtd_->start())]);
}

TEST_F(DtdTest, RePlusWitnessesAreValidExtremes) {
  // Make the DTD a pure DTD(RE+) first (drop the section* recursion).
  ASSERT_TRUE(dtd_->SetRule("section", "title paragraph+").ok());
  StatusOr<RePlusWitnesses> w = BuildRePlusWitnesses(*dtd_);
  ASSERT_TRUE(w.ok());
  int start = dtd_->start();
  int t_min = w->t_min[static_cast<std::size_t>(start)];
  int t_vast = w->t_vast[static_cast<std::size_t>(start)];
  ASSERT_GE(t_min, 0);
  ASSERT_GE(t_vast, 0);
  StatusOr<Node*> min_tree = w->forest.Materialize(t_min, &builder_, 1 << 16);
  StatusOr<Node*> vast_tree =
      w->forest.Materialize(t_vast, &builder_, 1 << 16);
  ASSERT_TRUE(min_tree.ok());
  ASSERT_TRUE(vast_tree.ok());
  EXPECT_TRUE(dtd_->Valid(*min_tree));
  EXPECT_TRUE(dtd_->Valid(*vast_tree));
  EXPECT_LT(NodeCount(*min_tree), NodeCount(*vast_tree));
}

TEST_F(DtdTest, RecursiveRePlusWitnessesAreMarkedUninhabited) {
  Alphabet a2;
  a2.Intern("x");
  a2.Intern("y");
  Dtd rec(&a2, *a2.Find("x"));
  ASSERT_TRUE(rec.SetRule("x", "y x").ok());
  StatusOr<RePlusWitnesses> w = BuildRePlusWitnesses(rec);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w->t_min[0], -1);
  EXPECT_GE(w->t_min[1], 0);
}

TEST_F(DtdTest, SetRuleErrors) {
  EXPECT_FALSE(dtd_->SetRule("book", "title (").ok());
  EXPECT_FALSE(dtd_->SetRule("unknown_symbol", "title").ok());
  EXPECT_FALSE(dtd_->SetRule("book", "brand_new_symbol").ok());
}

}  // namespace
}  // namespace xtc
