// Property sweeps over the string-automata substrate: Glushkov + subset +
// complement + minimization agree with each other and with direct word
// evaluation on a catalogue of regexes.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/fa/dfa.h"
#include "src/fa/regex.h"

namespace xtc {
namespace {

std::vector<std::vector<int>> AllWords(int num_symbols, int max_len) {
  std::vector<std::vector<int>> words{{}};
  std::size_t begin = 0;
  for (int len = 1; len <= max_len; ++len) {
    std::size_t end = words.size();
    for (std::size_t i = begin; i < end; ++i) {
      for (int s = 0; s < num_symbols; ++s) {
        std::vector<int> w = words[i];
        w.push_back(s);
        words.push_back(std::move(w));
      }
    }
    begin = end;
  }
  return words;
}

class FaPropertyTest : public ::testing::TestWithParam<const char*> {};

TEST_P(FaPropertyTest, PipelineAgreesOnAllShortWords) {
  Alphabet alphabet;
  alphabet.Intern("a");
  alphabet.Intern("b");
  alphabet.Intern("c");
  StatusOr<RegexPtr> re = ParseRegex(GetParam(), &alphabet);
  ASSERT_TRUE(re.ok()) << re.status().ToString();
  Nfa nfa = RegexToNfa(**re, 3);
  Dfa dfa = Dfa::FromNfa(nfa);
  Dfa complete = dfa.Completed();
  Dfa complement = dfa.Complemented();
  Dfa minimized = dfa.Minimized();
  EXPECT_TRUE(minimized.EquivalentTo(dfa));
  EXPECT_LE(minimized.num_states(), complete.num_states());
  for (const auto& w : AllWords(3, 5)) {
    bool in_nfa = nfa.Accepts(w);
    EXPECT_EQ(dfa.Accepts(w), in_nfa) << GetParam();
    EXPECT_EQ(complete.Accepts(w), in_nfa) << GetParam();
    EXPECT_NE(complement.Accepts(w), in_nfa) << GetParam();
    EXPECT_EQ(minimized.Accepts(w), in_nfa) << GetParam();
  }
  // Double complement restores the language.
  EXPECT_TRUE(complement.Complemented().EquivalentTo(dfa));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FaPropertyTest,
    ::testing::Values("a", "%", "a b c", "(a|b)*", "(a|b)* a", "a+ b+ c+",
                      "a? b? c?", "(a b)* c", "a (b | %) a", "((a|b) c)*",
                      "(a|b|c)* a (a|b|c)", "a* b* c*", "(a+ | b+) c?",
                      "((a | b c)+ | c) a?"));

TEST(FaPropertyTest, ReverseOfReverseIsOriginal) {
  Alphabet alphabet;
  alphabet.Intern("a");
  alphabet.Intern("b");
  for (const char* pattern : {"a b", "(a|b)* a", "a+ b?"}) {
    StatusOr<RegexPtr> re = ParseRegex(pattern, &alphabet);
    ASSERT_TRUE(re.ok());
    Dfa d = Dfa::FromNfa(RegexToNfa(**re, 2));
    Dfa rr = Dfa::FromNfa(Dfa::Reverse(Dfa::FromNfa(Dfa::Reverse(d))));
    EXPECT_TRUE(rr.EquivalentTo(d)) << pattern;
  }
}

TEST(FaPropertyTest, ProductLawsHold) {
  Alphabet alphabet;
  alphabet.Intern("a");
  alphabet.Intern("b");
  StatusOr<RegexPtr> r1 = ParseRegex("(a|b)* a", &alphabet);
  StatusOr<RegexPtr> r2 = ParseRegex("a (a|b)*", &alphabet);
  ASSERT_TRUE(r1.ok() && r2.ok());
  Dfa x = Dfa::FromNfa(RegexToNfa(**r1, 2));
  Dfa y = Dfa::FromNfa(RegexToNfa(**r2, 2));
  Dfa x_and_y = Dfa::Product(x, y, Dfa::BoolOp::kAnd);
  Dfa x_or_y = Dfa::Product(x, y, Dfa::BoolOp::kOr);
  Dfa x_diff_y = Dfa::Product(x, y, Dfa::BoolOp::kDiff);
  // De Morgan: x ∪ y = ¬(¬x ∩ ¬y).
  Dfa demorgan = Dfa::Product(x.Complemented(), y.Complemented(),
                              Dfa::BoolOp::kAnd)
                     .Complemented();
  EXPECT_TRUE(x_or_y.EquivalentTo(demorgan));
  // diff = and-with-complement.
  Dfa diff2 = Dfa::Product(x, y.Complemented(), Dfa::BoolOp::kAnd);
  EXPECT_TRUE(x_diff_y.EquivalentTo(diff2));
  // x ∩ y ⊆ x ⊆ x ∪ y.
  EXPECT_TRUE(x_and_y.IncludedIn(x));
  EXPECT_TRUE(x.IncludedIn(x_or_y));
}

}  // namespace
}  // namespace xtc
