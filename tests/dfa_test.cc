#include "src/fa/dfa.h"

#include <vector>

#include <gtest/gtest.h>

#include "src/fa/alphabet.h"
#include "src/fa/regex.h"

namespace xtc {
namespace {

// Parses a regex over {a, b} and compiles via Glushkov + subset.
Dfa FromPattern(const char* pattern) {
  Alphabet alphabet;
  alphabet.Intern("a");
  alphabet.Intern("b");
  StatusOr<RegexPtr> re = ParseRegex(pattern, &alphabet);
  EXPECT_TRUE(re.ok()) << re.status().ToString();
  return Dfa::FromNfa(RegexToNfa(**re, 2));
}

std::vector<int> W(std::initializer_list<int> xs) { return xs; }

TEST(DfaTest, FromNfaPreservesLanguage) {
  Dfa d = FromPattern("(a b)*");
  EXPECT_TRUE(d.Accepts(W({})));
  EXPECT_TRUE(d.Accepts(W({0, 1})));
  EXPECT_TRUE(d.Accepts(W({0, 1, 0, 1})));
  EXPECT_FALSE(d.Accepts(W({0})));
  EXPECT_FALSE(d.Accepts(W({1})));
}

TEST(DfaTest, RunReportsDeadState) {
  Dfa d = FromPattern("a b");
  EXPECT_EQ(d.Run(d.initial(), W({1, 1})), Dfa::kDead);
  EXPECT_NE(d.Run(d.initial(), W({0})), Dfa::kDead);
}

TEST(DfaTest, CompletedIsTotalAndEquivalent) {
  Dfa d = FromPattern("a b+");
  Dfa c = d.Completed();
  EXPECT_TRUE(c.IsComplete());
  for (const auto& w :
       {W({}), W({0}), W({0, 1}), W({0, 1, 1}), W({1, 0}), W({0, 0})}) {
    EXPECT_EQ(d.Accepts(w), c.Accepts(w));
  }
}

TEST(DfaTest, ComplementFlipsMembership) {
  Dfa d = FromPattern("a* b");
  Dfa c = d.Complemented();
  for (const auto& w : {W({}), W({1}), W({0, 1}), W({0, 0}), W({1, 1})}) {
    EXPECT_NE(d.Accepts(w), c.Accepts(w));
  }
}

TEST(DfaTest, ProductAndOrDiff) {
  Dfa starts_a = FromPattern("a (a|b)*");
  Dfa ends_b = FromPattern("(a|b)* b");
  Dfa both = Dfa::Product(starts_a, ends_b, Dfa::BoolOp::kAnd);
  Dfa either = Dfa::Product(starts_a, ends_b, Dfa::BoolOp::kOr);
  Dfa diff = Dfa::Product(starts_a, ends_b, Dfa::BoolOp::kDiff);
  EXPECT_TRUE(both.Accepts(W({0, 1})));
  EXPECT_FALSE(both.Accepts(W({0, 0})));
  EXPECT_TRUE(either.Accepts(W({1, 1})));
  EXPECT_FALSE(either.Accepts(W({1, 0})));
  EXPECT_TRUE(diff.Accepts(W({0, 0})));
  EXPECT_FALSE(diff.Accepts(W({0, 1})));
}

TEST(DfaTest, EmptinessAndShortestWitness) {
  Dfa d = FromPattern("a b a");
  EXPECT_FALSE(d.IsEmpty());
  auto w = d.ShortestAccepted();
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(*w, W({0, 1, 0}));
  // a ∩ b is empty.
  Dfa never = Dfa::Product(FromPattern("a"), FromPattern("b"),
                           Dfa::BoolOp::kAnd);
  EXPECT_TRUE(never.IsEmpty());
}

TEST(DfaTest, InclusionAndEquivalence) {
  Dfa ab_star = FromPattern("(a b)*");
  Dfa any = FromPattern("(a|b)*");
  EXPECT_TRUE(ab_star.IncludedIn(any));
  EXPECT_FALSE(any.IncludedIn(ab_star));
  EXPECT_TRUE(any.EquivalentTo(FromPattern("(b|a)*")));
  EXPECT_FALSE(any.EquivalentTo(ab_star));
}

TEST(DfaTest, MinimizationPreservesLanguageAndShrinks) {
  // A deliberately redundant DFA for "even number of a's" over {a}.
  Dfa d(1);
  int s0 = d.AddState(true);
  int s1 = d.AddState(false);
  int s2 = d.AddState(true);
  int s3 = d.AddState(false);
  d.SetInitial(s0);
  d.SetTransition(s0, 0, s1);
  d.SetTransition(s1, 0, s2);
  d.SetTransition(s2, 0, s3);
  d.SetTransition(s3, 0, s0);
  Dfa m = d.Minimized();
  EXPECT_EQ(m.num_states(), 2);
  EXPECT_TRUE(m.EquivalentTo(d));
}

TEST(DfaTest, ReverseAcceptsMirroredWords) {
  Dfa d = FromPattern("a a b");
  Nfa r = Dfa::Reverse(d);
  EXPECT_TRUE(r.Accepts(W({1, 0, 0})));
  EXPECT_FALSE(r.Accepts(W({0, 0, 1})));
}

TEST(DfaTest, ToNfaRoundTrip) {
  Dfa d = FromPattern("a+ b?");
  Nfa n = d.ToNfa();
  Dfa d2 = Dfa::FromNfa(n);
  EXPECT_TRUE(d.EquivalentTo(d2));
}

}  // namespace
}  // namespace xtc
