#include "src/base/state_set.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <vector>

#include "src/base/interner.h"
#include "src/fa/nfa.h"

namespace xtc {
namespace {

// Property suite cross-checking the packed word-parallel kernel against the
// naive structures it replaced: StateSet vs std::vector<bool> and
// SubsetInterner vs std::map<std::vector<int>, int>. Sizes deliberately
// straddle the 64-bit word boundary so padding-bit hygiene is exercised.

constexpr int kSizes[] = {0, 1, 7, 63, 64, 65, 127, 128, 130, 200};

std::vector<bool> RandomBools(std::mt19937& rng, int n, double density) {
  std::bernoulli_distribution bit(density);
  std::vector<bool> out(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out[static_cast<std::size_t>(i)] = bit(rng);
  return out;
}

TEST(StateSetTest, RandomMutationsMatchVectorBoolReference) {
  std::mt19937 rng(20260806);
  for (int n : kSizes) {
    StateSet set(n);
    std::vector<bool> ref(static_cast<std::size_t>(n), false);
    std::uniform_int_distribution<int> pick_bit(0, std::max(0, n - 1));
    std::uniform_int_distribution<int> pick_op(0, 4);
    for (int step = 0; step < 400; ++step) {
      if (n == 0) break;
      const int i = pick_bit(rng);
      const std::size_t ui = static_cast<std::size_t>(i);
      switch (pick_op(rng)) {
        case 0:
          set.Set(i);
          ref[ui] = true;
          break;
        case 1:
          set.Reset(i);
          ref[ui] = false;
          break;
        case 2: {
          const bool v = (rng() & 1) != 0;
          set.SetTo(i, v);
          ref[ui] = v;
          break;
        }
        case 3: {
          const bool was_clear = !ref[ui];
          EXPECT_EQ(set.TestAndSet(i), was_clear);
          ref[ui] = true;
          break;
        }
        case 4:
          EXPECT_EQ(set.Test(i), ref[ui]);
          break;
      }
      EXPECT_EQ(set[i], ref[ui]);
    }
    EXPECT_EQ(set.ToBools(), ref);
    EXPECT_EQ(set.Count(),
              static_cast<int>(std::count(ref.begin(), ref.end(), true)));
    EXPECT_EQ(set.Any(), std::find(ref.begin(), ref.end(), true) != ref.end());
    EXPECT_EQ(set, StateSet::FromBools(ref));
    EXPECT_EQ(set.Hash(), StateSet::FromBools(ref).Hash());
  }
}

TEST(StateSetTest, BinaryOpsMatchReference) {
  std::mt19937 rng(7);
  for (int n : kSizes) {
    for (int round = 0; round < 20; ++round) {
      const std::vector<bool> ra = RandomBools(rng, n, 0.3);
      const std::vector<bool> rb = RandomBools(rng, n, 0.3);
      const StateSet b = StateSet::FromBools(rb);

      // UnionWith reports whether anything changed.
      StateSet u = StateSet::FromBools(ra);
      bool ref_changed = false;
      std::vector<bool> ru = ra;
      for (int i = 0; i < n; ++i) {
        const std::size_t ui = static_cast<std::size_t>(i);
        if (rb[ui] && !ru[ui]) {
          ru[ui] = true;
          ref_changed = true;
        }
      }
      EXPECT_EQ(u.UnionWith(b), ref_changed);
      EXPECT_EQ(u.ToBools(), ru);
      EXPECT_FALSE(u.UnionWith(b));  // idempotent: second union is a no-op

      StateSet inter = StateSet::FromBools(ra);
      inter.IntersectWith(b);
      StateSet sub = StateSet::FromBools(ra);
      sub.SubtractWith(b);
      bool ref_intersects = false;
      bool ref_contains_all = true;
      for (int i = 0; i < n; ++i) {
        const std::size_t ui = static_cast<std::size_t>(i);
        EXPECT_EQ(inter.Test(i), ra[ui] && rb[ui]);
        EXPECT_EQ(sub.Test(i), ra[ui] && !rb[ui]);
        ref_intersects = ref_intersects || (ra[ui] && rb[ui]);
        ref_contains_all = ref_contains_all && (!rb[ui] || ra[ui]);
      }
      EXPECT_EQ(StateSet::FromBools(ra).Intersects(b), ref_intersects);
      EXPECT_EQ(StateSet::FromBools(ra).ContainsAll(b), ref_contains_all);
      EXPECT_TRUE(StateSet::FromBools(ra).ContainsAll(inter));
      EXPECT_FALSE(inter.Intersects(sub));
    }
  }
}

TEST(StateSetTest, ForEachVisitsMembersInOrder) {
  std::mt19937 rng(11);
  for (int n : kSizes) {
    const std::vector<bool> ref = RandomBools(rng, n, 0.2);
    const StateSet set = StateSet::FromBools(ref);
    std::vector<int> expected;
    for (int i = 0; i < n; ++i) {
      if (ref[static_cast<std::size_t>(i)]) expected.push_back(i);
    }
    std::vector<int> visited;
    set.ForEach([&](int b) { visited.push_back(b); });
    EXPECT_EQ(visited, expected);
    EXPECT_EQ(set.ToVector(), expected);
  }
}

TEST(StateSetTest, EmptyAndFullUniverseEdgeCases) {
  // Zero-bit universe: every aggregate query must behave.
  StateSet empty(0);
  EXPECT_TRUE(empty.empty_universe());
  EXPECT_FALSE(empty.Any());
  EXPECT_EQ(empty.Count(), 0);
  EXPECT_TRUE(empty.ToVector().empty());
  EXPECT_EQ(empty, StateSet());

  // All-bits-set at non-word-multiple sizes: padding bits must stay zero so
  // Count/==/Hash see exactly num_bits members.
  for (int n : kSizes) {
    StateSet full(n, /*value=*/true);
    EXPECT_EQ(full.Count(), n);
    EXPECT_EQ(full, StateSet::FromBools(std::vector<bool>(
                        static_cast<std::size_t>(n), true)));
    StateSet built(n);
    for (int i = 0; i < n; ++i) built.Set(i);
    EXPECT_EQ(full, built);
    EXPECT_EQ(full.Hash(), built.Hash());
    full.Clear();
    EXPECT_TRUE(full.None());
  }

  // Resize keeps members and zeroes the grown region.
  StateSet grown(65, /*value=*/true);
  grown.Resize(130);
  EXPECT_EQ(grown.Count(), 65);
  for (int i = 65; i < 130; ++i) EXPECT_FALSE(grown.Test(i));
  grown.Resize(3);
  EXPECT_EQ(grown.Count(), 3);
}

TEST(StateSetTest, UniverseSizeDistinguishesEqualMemberSets) {
  StateSet a(64);
  StateSet b(70);
  a.Set(3);
  b.Set(3);
  EXPECT_FALSE(a == b);  // same members, different universe
  EXPECT_EQ(a.ToVector(), b.ToVector());
}

TEST(SubsetInternerTest, MatchesOrderedMapReference) {
  std::mt19937 rng(20260806);
  std::uniform_int_distribution<int> pick_len(0, 8);
  std::uniform_int_distribution<int> pick_val(0, 20);
  SubsetInterner interner;
  std::map<std::vector<int>, int> ref;
  std::vector<std::vector<int>> by_id;
  for (int step = 0; step < 3000; ++step) {
    std::vector<int> key(static_cast<std::size_t>(pick_len(rng)));
    for (int& v : key) v = pick_val(rng);
    auto [it, inserted] = ref.emplace(key, static_cast<int>(by_id.size()));
    if (inserted) by_id.push_back(key);
    const int id = interner.Intern(key);
    EXPECT_EQ(id, it->second);
    EXPECT_EQ(interner.Find(key), it->second);
    EXPECT_EQ(interner.size(), static_cast<int>(by_id.size()));
  }
  // Dense ids in first-insertion order; Get round-trips every key.
  for (int id = 0; id < interner.size(); ++id) {
    const std::span<const int> got = interner.Get(id);
    EXPECT_EQ(std::vector<int>(got.begin(), got.end()),
              by_id[static_cast<std::size_t>(id)]);
  }
  // Keys never interned are not found.
  const std::vector<int> absent = {99, 98, 97};
  EXPECT_EQ(interner.Find(absent), -1);
  EXPECT_EQ(SubsetInterner().Find(absent), -1);
}

TEST(SubsetInternerTest, EmptyKeyAndReserveSurviveRehash) {
  SubsetInterner interner;
  interner.Reserve(4, 2);
  const std::vector<int> empty_key;
  EXPECT_EQ(interner.Intern(empty_key), 0);
  EXPECT_EQ(interner.Intern(empty_key), 0);
  // Force several rehashes past the reservation; ids must stay stable.
  for (int i = 0; i < 500; ++i) {
    const std::vector<int> key = {i, i * 7, i * 13};
    EXPECT_EQ(interner.Intern(key), i + 1);
  }
  EXPECT_EQ(interner.Find(empty_key), 0);
  for (int i = 0; i < 500; ++i) {
    const std::vector<int> key = {i, i * 7, i * 13};
    EXPECT_EQ(interner.Find(key), i + 1);
  }
}

TEST(SubsetInternerTest, StateSetKeysRoundTripThroughToVector) {
  // The engines intern StateSets via ToVector(); interning must agree with
  // set equality.
  std::mt19937 rng(3);
  SubsetInterner interner;
  std::vector<StateSet> sets;
  for (int round = 0; round < 200; ++round) {
    const StateSet s = StateSet::FromBools(RandomBools(rng, 70, 0.15));
    const int id = interner.Intern(s.ToVector());
    if (id == static_cast<int>(sets.size())) {
      sets.push_back(s);
    } else {
      // Same members (the key drops the universe size, which is fixed here).
      EXPECT_EQ(sets[static_cast<std::size_t>(id)].ToVector(), s.ToVector());
    }
  }
}

// --- Randomized automata: StateSet-backed NFA analyses vs naive
// vector<bool> references, including allowed-mask and empty/full masks. ---

Nfa RandomNfa(std::mt19937& rng, int num_states, int num_symbols,
              int num_edges) {
  Nfa n(num_symbols);
  std::bernoulli_distribution coin(0.2);
  for (int s = 0; s < num_states; ++s) n.AddState(coin(rng), coin(rng));
  std::uniform_int_distribution<int> pick_state(0, num_states - 1);
  std::uniform_int_distribution<int> pick_sym(0, num_symbols - 1);
  for (int e = 0; e < num_edges; ++e) {
    n.AddTransition(pick_state(rng), pick_sym(rng), pick_state(rng));
  }
  return n;
}

std::vector<bool> RefForward(const Nfa& n, const std::vector<bool>& allowed) {
  std::vector<bool> seen(static_cast<std::size_t>(n.num_states()), false);
  bool changed = true;
  while (changed) {
    changed = false;
    for (int s = 0; s < n.num_states(); ++s) {
      if (!seen[static_cast<std::size_t>(s)] && n.initial(s)) {
        seen[static_cast<std::size_t>(s)] = true;
        changed = true;
      }
      if (!seen[static_cast<std::size_t>(s)]) continue;
      for (const auto& [a, t] : n.Edges(s)) {
        if (!allowed[static_cast<std::size_t>(a)]) continue;
        if (!seen[static_cast<std::size_t>(t)]) {
          seen[static_cast<std::size_t>(t)] = true;
          changed = true;
        }
      }
    }
  }
  return seen;
}

std::vector<bool> RefBackward(const Nfa& n, const std::vector<bool>& allowed) {
  std::vector<bool> seen(static_cast<std::size_t>(n.num_states()), false);
  for (int s = 0; s < n.num_states(); ++s) {
    if (n.final(s)) seen[static_cast<std::size_t>(s)] = true;
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (int s = 0; s < n.num_states(); ++s) {
      if (seen[static_cast<std::size_t>(s)]) continue;
      for (const auto& [a, t] : n.Edges(s)) {
        if (!allowed[static_cast<std::size_t>(a)]) continue;
        if (seen[static_cast<std::size_t>(t)]) {
          seen[static_cast<std::size_t>(s)] = true;
          changed = true;
          break;
        }
      }
    }
  }
  return seen;
}

TEST(StateSetTest, NfaAnalysesMatchNaiveReferencesOnRandomAutomata) {
  std::mt19937 rng(20260806);
  for (int round = 0; round < 40; ++round) {
    const int num_states = 2 + static_cast<int>(rng() % 70);
    const int num_symbols = 1 + static_cast<int>(rng() % 9);
    const Nfa n = RandomNfa(rng, num_states, num_symbols, 3 * num_states);

    // Masks under test: full (== nullptr), empty, and random subsets.
    std::vector<std::vector<bool>> masks = {
        std::vector<bool>(static_cast<std::size_t>(num_symbols), true),
        std::vector<bool>(static_cast<std::size_t>(num_symbols), false),
        RandomBools(rng, num_symbols, 0.5),
        RandomBools(rng, num_symbols, 0.5)};
    for (std::size_t mi = 0; mi < masks.size(); ++mi) {
      const std::vector<bool>& mask = masks[mi];
      const StateSet allowed = StateSet::FromBools(mask);
      // Pass nullptr for the full mask on even rounds to cover that branch.
      const StateSet* arg =
          (mi == 0 && round % 2 == 0) ? nullptr : &allowed;

      const std::vector<bool> fwd = RefForward(n, mask);
      const std::vector<bool> bwd = RefBackward(n, mask);
      bool ref_accepts = false;
      for (int s = 0; s < n.num_states(); ++s) {
        ref_accepts = ref_accepts || (fwd[static_cast<std::size_t>(s)] &&
                                      bwd[static_cast<std::size_t>(s)]);
      }
      EXPECT_EQ(n.AcceptsSomeOver(arg), ref_accepts);

      std::vector<bool> ref_syms(static_cast<std::size_t>(num_symbols),
                                 false);
      for (int s = 0; s < n.num_states(); ++s) {
        if (!fwd[static_cast<std::size_t>(s)]) continue;
        for (const auto& [a, t] : n.Edges(s)) {
          if (mask[static_cast<std::size_t>(a)] &&
              bwd[static_cast<std::size_t>(t)]) {
            ref_syms[static_cast<std::size_t>(a)] = true;
          }
        }
      }
      EXPECT_EQ(n.SymbolsOnAcceptingPaths(arg).ToBools(), ref_syms);

      // fa_property_test invariants, now over masked languages: a shortest
      // witness exists iff the language is non-empty, is accepted, and uses
      // only allowed symbols; infinite implies non-empty.
      const std::optional<std::vector<int>> word = n.ShortestAcceptedOver(arg);
      EXPECT_EQ(word.has_value(), ref_accepts);
      if (word.has_value()) {
        EXPECT_TRUE(n.Accepts(*word));
        for (int sym : *word) {
          EXPECT_TRUE(mask[static_cast<std::size_t>(sym)]);
        }
      }
      if (n.AcceptsInfinitelyManyOver(arg)) {
        EXPECT_TRUE(ref_accepts);
      }
    }
  }
}

}  // namespace
}  // namespace xtc
