#include "src/nta/nta.h"

#include <gtest/gtest.h>

#include "src/core/brute_force.h"
#include "src/nta/analysis.h"
#include "src/nta/determinize.h"
#include "src/nta/product.h"
#include "src/tree/codec.h"

namespace xtc {
namespace {

class NtaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (const char* s : {"book", "title", "author", "chapter"}) {
      alphabet_.Intern(s);
    }
    dtd_ = std::make_unique<Dtd>(&alphabet_, *alphabet_.Find("book"));
    ASSERT_TRUE(dtd_->SetRule("book", "title author+ chapter+").ok());
    ASSERT_TRUE(dtd_->SetRule("chapter", "title").ok());
  }

  Node* Tree(const char* term) {
    StatusOr<Node*> t = ParseTerm(term, &alphabet_, &builder_);
    EXPECT_TRUE(t.ok());
    return *t;
  }

  Alphabet alphabet_;
  Arena arena_;
  TreeBuilder builder_{&arena_};
  std::unique_ptr<Dtd> dtd_;
};

TEST_F(NtaTest, FromDtdMatchesValidation) {
  Nta nta = Nta::FromDtd(*dtd_);
  BruteForceOptions opts;
  opts.max_depth = 3;
  opts.max_width = 3;
  StatusOr<std::vector<Node*>> trees =
      EnumerateValidTrees(*dtd_, dtd_->start(), opts, &builder_);
  ASSERT_TRUE(trees.ok());
  ASSERT_FALSE(trees->empty());
  for (Node* t : *trees) {
    EXPECT_TRUE(nta.Accepts(t));
  }
  EXPECT_FALSE(nta.Accepts(Tree("book(title)")));
  EXPECT_FALSE(nta.Accepts(Tree("title")));
  EXPECT_TRUE(nta.Accepts(Tree("book(title author chapter(title))")));
}

TEST_F(NtaTest, EmptinessMatchesDtdEmptiness) {
  Nta nta = Nta::FromDtd(*dtd_);
  EXPECT_FALSE(IsEmptyLanguage(nta));
  Alphabet a2;
  a2.Intern("x");
  Dtd rec(&a2, 0);
  ASSERT_TRUE(rec.SetRule("x", "x").ok());
  EXPECT_TRUE(IsEmptyLanguage(Nta::FromDtd(rec)));
}

TEST_F(NtaTest, WitnessTreeIsAccepted) {
  Nta nta = Nta::FromDtd(*dtd_);
  SharedForest forest;
  std::optional<int> id = WitnessTree(nta, &forest);
  ASSERT_TRUE(id.has_value());
  StatusOr<Node*> tree = forest.Materialize(*id, &builder_, 1 << 16);
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE(nta.Accepts(*tree));
  EXPECT_TRUE(dtd_->Valid(*tree));
}

TEST_F(NtaTest, FinitenessDetectsStarRules) {
  // book -> title author+ chapter+ has unbounded authors: infinite.
  EXPECT_FALSE(IsFiniteLanguage(Nta::FromDtd(*dtd_)));
  // An exact-arity DTD is finite.
  Alphabet a2;
  a2.Intern("r");
  a2.Intern("x");
  Dtd fin(&a2, 0);
  ASSERT_TRUE(fin.SetRule("r", "x x").ok());
  EXPECT_TRUE(IsFiniteLanguage(Nta::FromDtd(fin)));
  // Vertical recursion with optional unfolding is infinite.
  Dtd vert(&a2, 0);
  ASSERT_TRUE(vert.SetRule("r", "x").ok());
  ASSERT_TRUE(vert.SetRule("x", "x | %").ok());
  EXPECT_FALSE(IsFiniteLanguage(Nta::FromDtd(vert)));
}

TEST_F(NtaTest, DeterminismAndCompleteness) {
  Nta nta = Nta::FromDtd(*dtd_);
  EXPECT_TRUE(IsBottomUpDeterministic(nta));
  EXPECT_FALSE(IsComplete(nta));
  Nta complete = CompletedDeterministic(nta);
  EXPECT_TRUE(IsBottomUpDeterministic(complete));
  EXPECT_TRUE(IsComplete(complete));
  // Completion preserves the language.
  BruteForceOptions opts;
  opts.max_depth = 3;
  opts.max_width = 3;
  StatusOr<std::vector<Node*>> trees =
      EnumerateValidTrees(*dtd_, dtd_->start(), opts, &builder_);
  ASSERT_TRUE(trees.ok());
  for (Node* t : *trees) EXPECT_TRUE(complete.Accepts(t));
  EXPECT_FALSE(complete.Accepts(Tree("book(title)")));
}

TEST_F(NtaTest, ComplementOfDtacFlipsAcceptance) {
  Nta complete = CompletedDeterministic(Nta::FromDtd(*dtd_));
  Nta complement = ComplementedDtac(complete);
  Node* good = Tree("book(title author chapter(title))");
  Node* bad = Tree("book(title)");
  EXPECT_TRUE(complete.Accepts(good));
  EXPECT_FALSE(complement.Accepts(good));
  EXPECT_FALSE(complete.Accepts(bad));
  EXPECT_TRUE(complement.Accepts(bad));
}

TEST_F(NtaTest, IntersectionAndUnion) {
  // d2 requires exactly one author.
  Dtd d2(&alphabet_, *alphabet_.Find("book"));
  ASSERT_TRUE(d2.SetRule("book", "title author chapter+").ok());
  ASSERT_TRUE(d2.SetRule("chapter", "title").ok());
  Nta a = Nta::FromDtd(*dtd_);
  Nta b = Nta::FromDtd(d2);
  Nta both = Intersect(a, b);
  Nta either = DisjointUnion(a, b);
  Node* one_author = Tree("book(title author chapter(title))");
  Node* two_authors = Tree("book(title author author chapter(title))");
  EXPECT_TRUE(both.Accepts(one_author));
  EXPECT_FALSE(both.Accepts(two_authors));
  EXPECT_TRUE(either.Accepts(one_author));
  EXPECT_TRUE(either.Accepts(two_authors));
  EXPECT_FALSE(either.Accepts(Tree("book(title)")));
}

TEST_F(NtaTest, DeterminizePreservesLanguage) {
  // A nondeterministic automaton: the union of two DTD automata.
  Dtd d2(&alphabet_, *alphabet_.Find("book"));
  ASSERT_TRUE(d2.SetRule("book", "chapter chapter").ok());
  ASSERT_TRUE(d2.SetRule("chapter", "title | %").ok());
  Nta u = DisjointUnion(Nta::FromDtd(*dtd_), Nta::FromDtd(d2));
  StatusOr<Nta> det = DeterminizeToDtac(u, 4096);
  ASSERT_TRUE(det.ok()) << det.status().ToString();
  EXPECT_TRUE(IsBottomUpDeterministic(*det));
  EXPECT_TRUE(IsComplete(*det));
  for (const char* term :
       {"book(title author chapter(title))", "book(chapter chapter)",
        "book(chapter(title) chapter)", "book(title)", "book(chapter)",
        "title", "book(title author author chapter(title) chapter(title))"}) {
    Node* t = Tree(term);
    EXPECT_EQ(u.Accepts(t), det->Accepts(t)) << term;
  }
}

TEST_F(NtaTest, DeterminizeRespectsBudget) {
  Nta u = Nta::FromDtd(*dtd_);
  StatusOr<Nta> det = DeterminizeToDtac(u, 1);
  EXPECT_FALSE(det.ok());
  EXPECT_EQ(det.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace xtc
