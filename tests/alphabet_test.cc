#include "src/fa/alphabet.h"

#include <gtest/gtest.h>

namespace xtc {
namespace {

TEST(AlphabetTest, InternIsIdempotent) {
  Alphabet a;
  int x = a.Intern("book");
  int y = a.Intern("book");
  EXPECT_EQ(x, y);
  EXPECT_EQ(a.size(), 1);
}

TEST(AlphabetTest, IdsAreDense) {
  Alphabet a;
  EXPECT_EQ(a.Intern("x"), 0);
  EXPECT_EQ(a.Intern("y"), 1);
  EXPECT_EQ(a.Intern("z"), 2);
  EXPECT_EQ(a.size(), 3);
}

TEST(AlphabetTest, FindWithoutIntern) {
  Alphabet a;
  a.Intern("known");
  EXPECT_TRUE(a.Find("known").has_value());
  EXPECT_FALSE(a.Find("unknown").has_value());
}

TEST(AlphabetTest, NameRoundTrip) {
  Alphabet a;
  for (const char* s : {"title", "author", "#", "$", "x-1"}) a.Intern(s);
  for (int i = 0; i < a.size(); ++i) {
    EXPECT_EQ(*a.Find(a.Name(i)), i);
  }
}

TEST(AlphabetTest, ManySymbols) {
  Alphabet a;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.Intern("sym" + std::to_string(i)), i);
  }
  EXPECT_EQ(a.size(), 1000);
  EXPECT_EQ(a.Name(999), "sym999");
}

}  // namespace
}  // namespace xtc
