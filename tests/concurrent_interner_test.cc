// ConcurrentInterner / ConcurrentLog (src/base/concurrent_interner.h): the
// shared id tables under the parallel lazy frontier engine. Covers the
// single-thread contract (dense ids, find/get, init-callback duties), the
// multi-thread insertion race (one id per key, winner-only duties, ids safe
// to exchange), capacity signaling (`full` vs hard cap) and quiescent
// growth. The multi-thread cases are the ones the tsan CI preset replays.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "src/base/concurrent_interner.h"

namespace xtc {
namespace {

std::vector<int> Key(std::uint32_t v) {
  // Multi-word keys so equality is content, not hash, comparison.
  return {static_cast<int>(v % 97), static_cast<int>(v / 97 % 89),
          static_cast<int>(v)};
}

TEST(ConcurrentInternerTest, DenseIdsAndLookup) {
  ConcurrentInterner interner(/*num_threads=*/1, /*max_entries=*/1024);
  for (int round = 0; round < 2; ++round) {
    // Second round re-interns everything: same ids, no new insertions.
    for (std::uint32_t v = 0; v < 100; ++v) {
      const auto res = interner.TryIntern(0, Key(v));
      ASSERT_FALSE(res.full);
      EXPECT_EQ(res.id, static_cast<int>(v));
      EXPECT_EQ(res.inserted, round == 0);
    }
  }
  EXPECT_EQ(interner.size(), 100);
  for (std::uint32_t v = 0; v < 100; ++v) {
    const std::vector<int> key = Key(v);
    EXPECT_EQ(interner.Find(key), static_cast<int>(v));
    const std::span<const int> got = interner.Get(static_cast<int>(v));
    EXPECT_TRUE(std::equal(got.begin(), got.end(), key.begin(), key.end()));
  }
  EXPECT_EQ(interner.Find(Key(100)), -1);
}

TEST(ConcurrentInternerTest, EmptyKeyAndHashOfAreStable) {
  ConcurrentInterner interner(1, 16);
  const auto empty = interner.TryIntern(0, std::span<const int>());
  ASSERT_TRUE(empty.inserted);
  EXPECT_EQ(interner.Find(std::span<const int>()), empty.id);
  EXPECT_EQ(interner.Get(empty.id).size(), 0u);
  const auto one = interner.TryIntern(0, Key(5));
  EXPECT_EQ(interner.HashOf(one.id), SubsetInterner::HashKey(Key(5)));
}

TEST(ConcurrentInternerTest, InitCallbackRunsOnceBeforePublication) {
  ConcurrentInterner interner(1, 64);
  ConcurrentLog<int> side(64);
  int init_calls = 0;
  for (int round = 0; round < 2; ++round) {
    const auto res = interner.TryIntern(0, Key(1), [&](int id) {
      ++init_calls;
      side.Slot(id) = 42;
    });
    EXPECT_EQ(side.Get(res.id), 42);
  }
  EXPECT_EQ(init_calls, 1);
}

TEST(ConcurrentInternerTest, FullSignalsGrowThenHardCap) {
  // Tiny table: fill limit trips first (NeedsGrow), a quiescent Grow makes
  // room, and the id-space cap is the terminal `full` (NeedsGrow false).
  const std::size_t max_entries = 96;
  ConcurrentInterner interner(1, max_entries, /*initial_capacity=*/64);
  std::uint32_t v = 0;
  bool saw_grow_pressure = false;
  while (static_cast<std::size_t>(interner.size()) < max_entries) {
    const auto res = interner.TryIntern(0, Key(v));
    if (res.full) {
      ASSERT_TRUE(interner.NeedsGrow()) << "premature hard cap";
      saw_grow_pressure = true;
      interner.Grow();
      continue;  // retry the same key
    }
    ++v;
  }
  EXPECT_TRUE(saw_grow_pressure);
  const auto over = interner.TryIntern(0, Key(v + 1));
  EXPECT_TRUE(over.full);
  EXPECT_FALSE(interner.NeedsGrow());  // the cap, not the fill limit
  // Everything interned before the cap is still reachable.
  for (std::uint32_t u = 0; u < v; ++u) {
    EXPECT_GE(interner.Find(Key(u)), 0) << u;
  }
}

TEST(ConcurrentInternerTest, ConcurrentInsertersAgreeOnIds) {
  // Heavily overlapping key sets from many threads: every key ends with
  // exactly one id, exactly one winner ran the init duty, and every
  // thread's view of (key -> id -> key) is consistent.
  const int kThreads = 8;
  // Prime, so every thread's odd stride is coprime with it and each thread
  // visits the whole key space (in a different order).
  const std::uint32_t kKeys = 2003;
  ConcurrentInterner interner(kThreads, kKeys * 2, 4096);
  std::vector<std::atomic<int>> duty_runs(kKeys);
  for (auto& d : duty_runs) d.store(0, std::memory_order_relaxed);
  std::vector<std::vector<int>> ids(kThreads,
                                    std::vector<int>(kKeys, -1));
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      // Each thread walks the keys at a different stride, so insertion
      // order differs per thread and races cover the whole key space.
      for (std::uint32_t i = 0; i < kKeys; ++i) {
        const std::uint32_t v =
            (i * static_cast<std::uint32_t>(2 * t + 1)) % kKeys;
        const auto res = interner.TryIntern(t, Key(v), [&](int) {
          duty_runs[v].fetch_add(1, std::memory_order_relaxed);
        });
        ASSERT_FALSE(res.full);
        ASSERT_GE(res.id, 0);
        ids[static_cast<std::size_t>(t)][v] = res.id;
      }
    });
  }
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(interner.size(), static_cast<int>(kKeys));
  for (std::uint32_t v = 0; v < kKeys; ++v) {
    EXPECT_EQ(duty_runs[v].load(), 1) << "key " << v;
    const int id0 = ids[0][v];
    for (int t = 1; t < kThreads; ++t) EXPECT_EQ(ids[t][v], id0);
    const std::vector<int> key = Key(v);
    const std::span<const int> got = interner.Get(id0);
    EXPECT_TRUE(std::equal(got.begin(), got.end(), key.begin(), key.end()));
  }
}

TEST(ConcurrentInternerTest, GrowBetweenConcurrentRoundsKeepsIds) {
  // Epoch-style use: hammer, quiesce, Grow, hammer again. Ids assigned in
  // round one must survive the grow and stay Get-consistent in round two.
  const int kThreads = 4;
  ConcurrentInterner interner(kThreads, 1 << 16, /*initial_capacity=*/64);
  auto hammer = [&](std::uint32_t base, std::uint32_t count) {
    std::atomic<bool> full{false};
    std::vector<std::thread> pool;
    for (int t = 0; t < kThreads; ++t) {
      pool.emplace_back([&, t] {
        for (std::uint32_t v = base; v < base + count; ++v) {
          if (interner.TryIntern(t, Key(v)).full) {
            full.store(true, std::memory_order_relaxed);
            return;
          }
        }
      });
    }
    for (std::thread& t : pool) t.join();
    return full.load();
  };
  std::uint32_t interned = 0;
  while (hammer(0, 40)) interner.Grow();  // rounds are quiescent points
  interned = 40;
  const int id_before = interner.Find(Key(7));
  ASSERT_GE(id_before, 0);
  while (interner.NeedsGrow() || interner.NearCapacity()) {
    if (!interner.CanGrow()) break;
    interner.Grow();
  }
  while (hammer(interned, 400)) interner.Grow();
  EXPECT_EQ(interner.Find(Key(7)), id_before);
  EXPECT_EQ(interner.size(), static_cast<int>(interned + 400));
}

TEST(ConcurrentLogTest, ConcurrentSlotsAtDistinctIds) {
  ConcurrentLog<int> log(1 << 12);
  const int kThreads = 8;
  const int kPerThread = 256;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      // Interleaved ids across threads, so segment allocation races too.
      for (int i = 0; i < kPerThread; ++i) {
        const int id = i * kThreads + t;
        log.Slot(id) = id * 3;
      }
    });
  }
  for (std::thread& t : pool) t.join();
  for (int id = 0; id < kThreads * kPerThread; ++id) {
    EXPECT_EQ(log.Get(id), id * 3);
  }
}

}  // namespace
}  // namespace xtc