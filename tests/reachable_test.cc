#include "src/core/reachable.h"

#include <gtest/gtest.h>

#include "src/core/paper_examples.h"
#include "src/td/exec.h"
#include "src/tree/codec.h"

namespace xtc {
namespace {

TEST(ReachableTest, BookExamplePairs) {
  PaperExample ex = MakeBookExample(/*with_summary=*/true);
  ReachablePairs reach(*ex.transducer, *ex.din);
  int q = *ex.transducer->FindState("q");
  int p = *ex.transducer->FindState("p");
  int p2 = *ex.transducer->FindState("p2");
  auto sym = [&](const char* s) { return *ex.alphabet->Find(s); };
  // q starts at book and walks everywhere.
  EXPECT_TRUE(reach.IsReachable(q, sym("book")));
  EXPECT_TRUE(reach.IsReachable(q, sym("chapter")));
  EXPECT_TRUE(reach.IsReachable(q, sym("section")));
  EXPECT_TRUE(reach.IsReachable(q, sym("title")));
  // p only processes book's children; p2 only chapter's children.
  EXPECT_TRUE(reach.IsReachable(p, sym("chapter")));
  EXPECT_TRUE(reach.IsReachable(p2, sym("intro")));
  EXPECT_FALSE(reach.IsReachable(p2, sym("book")));
  EXPECT_FALSE(reach.IsReachable(p, sym("paragraph")));
  // q never reaches the root label from below (book cannot nest).
  EXPECT_FALSE(reach.IsReachable(p2, sym("chapter")));
}

TEST(ReachableTest, UnreachableWhenInputLanguageEmpty) {
  Alphabet alphabet;
  alphabet.Intern("r");
  Dtd din(&alphabet, 0);
  ASSERT_TRUE(din.SetRule("r", "r").ok());  // empty language
  Transducer t(&alphabet);
  t.AddState("q0");
  t.SetInitial(0);
  ASSERT_TRUE(t.SetRuleFromString("q0", "r", "r(q0)").ok());
  ReachablePairs reach(t, din);
  EXPECT_FALSE(reach.IsReachable(0, 0));
  EXPECT_TRUE(reach.pairs().empty());
}

TEST(ReachableTest, EmbedWitnessProducesValidContext) {
  PaperExample ex = MakeBookExample(false);
  ReachablePairs reach(*ex.transducer, *ex.din);
  int q = *ex.transducer->FindState("q");
  int section = *ex.alphabet->Find("section");
  ASSERT_TRUE(reach.IsReachable(q, section));
  Arena arena;
  TreeBuilder builder(&arena);
  // Embed a specific section subtree; the result must satisfy d_in and the
  // subtree must appear in it.
  StatusOr<Node*> subtree = ParseTerm("section(title paragraph paragraph)",
                                      ex.alphabet.get(), &builder);
  ASSERT_TRUE(subtree.ok());
  Node* embedded = reach.EmbedWitness(q, section, *subtree, &builder);
  EXPECT_TRUE(ex.din->Valid(embedded));
  EXPECT_NE(ToTermString(embedded, *ex.alphabet)
                .find("section(title paragraph paragraph)"),
            std::string::npos);
}

TEST(ReachableTest, StatesInRhsCollectsSelectorsToo) {
  PaperExample ex = MakeExample22();
  int q = *ex.transducer->FindState("q");
  const RhsHedge* rhs =
      ex.transducer->rule(q, *ex.alphabet->Find("chapter"));
  ASSERT_NE(rhs, nullptr);
  StateSet states(ex.transducer->num_states());
  StatesInRhs(*rhs, &states);
  EXPECT_TRUE(states.Test(q));
}

}  // namespace
}  // namespace xtc
