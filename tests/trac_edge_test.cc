// Adversarial corner cases for the Lemma 14 engine beyond the main
// trac_test.cc suite: violations at inner output nodes, uninhabited output
// rules, deep counterexample embedding, and option handling.

#include <gtest/gtest.h>

#include "src/core/paper_examples.h"
#include "src/core/trac.h"
#include "src/tree/codec.h"

namespace xtc {
namespace {

class TracEdgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (const char* s : {"r", "a", "b", "c", "d"}) alphabet_.Intern(s);
  }

  Alphabet alphabet_;
};

TEST_F(TracEdgeTest, ViolationAtDeepOutputNode) {
  // The rule produces b(c(d ...)) where the inner c's children string is
  // wrong only when the input has two a-children.
  Dtd din(&alphabet_, *alphabet_.Find("r"));
  ASSERT_TRUE(din.SetRule("r", "a a?").ok());
  Dtd dout(&alphabet_, *alphabet_.Find("b"));
  ASSERT_TRUE(dout.SetRule("b", "c").ok());
  ASSERT_TRUE(dout.SetRule("c", "d").ok());  // exactly one d
  Transducer t(&alphabet_);
  t.AddState("q0");
  t.AddState("q");
  t.SetInitial(0);
  ASSERT_TRUE(t.SetRuleFromString("q0", "r", "b(c(q))").ok());
  ASSERT_TRUE(t.SetRuleFromString("q", "a", "d").ok());
  StatusOr<TypecheckResult> result = TypecheckTrac(t, din, dout);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->typechecks);  // r(a a) gives c(d d)
  ASSERT_NE(result->counterexample, nullptr);
  EXPECT_TRUE(VerifyCounterexample(t, din, dout, result->counterexample));
  EXPECT_EQ(ToTermString(result->counterexample, alphabet_), "r(a a)");
}

TEST_F(TracEdgeTest, UninhabitedOutputRuleAlwaysViolates) {
  // d_out(c) demands a child that itself can never exist... here simpler:
  // d_out(b) demands a c child but the transducer emits a bare b leaf.
  Dtd din(&alphabet_, *alphabet_.Find("r"));
  ASSERT_TRUE(din.SetRule("r", "%").ok());
  Dtd dout(&alphabet_, *alphabet_.Find("b"));
  ASSERT_TRUE(dout.SetRule("b", "c").ok());
  Transducer t(&alphabet_);
  t.AddState("q0");
  t.SetInitial(0);
  ASSERT_TRUE(t.SetRuleFromString("q0", "r", "b").ok());
  StatusOr<TypecheckResult> result = TypecheckTrac(t, din, dout);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->typechecks);
  EXPECT_TRUE(VerifyCounterexample(t, din, dout, result->counterexample));
}

TEST_F(TracEdgeTest, ConstantOutputAlwaysTypechecksWhenValid) {
  Dtd din(&alphabet_, *alphabet_.Find("r"));
  ASSERT_TRUE(din.SetRule("r", "a*").ok());
  Dtd dout(&alphabet_, *alphabet_.Find("b"));
  ASSERT_TRUE(dout.SetRule("b", "c c").ok());
  Transducer t(&alphabet_);
  t.AddState("q0");
  t.SetInitial(0);
  ASSERT_TRUE(t.SetRuleFromString("q0", "r", "b(c c)").ok());
  StatusOr<TypecheckResult> result = TypecheckTrac(t, din, dout);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->typechecks);
}

TEST_F(TracEdgeTest, DeepEmbeddingOfCounterexampleContext) {
  // The violating pair is reachable only through a chain of three levels;
  // the counterexample must embed the violating subtree in a valid context.
  Dtd din(&alphabet_, *alphabet_.Find("r"));
  ASSERT_TRUE(din.SetRule("r", "a").ok());
  ASSERT_TRUE(din.SetRule("a", "b").ok());
  ASSERT_TRUE(din.SetRule("b", "c | d").ok());
  Dtd dout(&alphabet_, *alphabet_.Find("r"));
  ASSERT_TRUE(dout.SetRule("r", "a").ok());
  ASSERT_TRUE(dout.SetRule("a", "b").ok());
  ASSERT_TRUE(dout.SetRule("b", "c?").ok());
  Transducer t(&alphabet_);
  t.AddState("q0");
  t.AddState("q");
  t.SetInitial(0);
  ASSERT_TRUE(t.SetRuleFromString("q0", "r", "r(q)").ok());
  ASSERT_TRUE(t.SetRuleFromString("q", "a", "a(q)").ok());
  ASSERT_TRUE(t.SetRuleFromString("q", "b", "b(q)").ok());
  ASSERT_TRUE(t.SetRuleFromString("q", "c", "c").ok());
  ASSERT_TRUE(t.SetRuleFromString("q", "d", "d").ok());
  StatusOr<TypecheckResult> result = TypecheckTrac(t, din, dout);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->typechecks);  // b(d) maps to b(d), not in c?
  ASSERT_NE(result->counterexample, nullptr);
  EXPECT_TRUE(VerifyCounterexample(t, din, dout, result->counterexample));
  EXPECT_EQ(ToTermString(result->counterexample, alphabet_), "r(a(b(d)))");
}

TEST_F(TracEdgeTest, WantCounterexampleFalseSkipsWitness) {
  PaperExample ex = MakeBookExample(false);
  ASSERT_TRUE(ex.dout->SetRule("book", "title").ok());
  TypecheckOptions opts;
  opts.want_counterexample = false;
  StatusOr<TypecheckResult> result =
      TypecheckTrac(*ex.transducer, *ex.din, *ex.dout, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->typechecks);
  EXPECT_EQ(result->counterexample, nullptr);
}

TEST_F(TracEdgeTest, DeletionBelowCopyIsHandled) {
  // Copying width 2 where each copy recursively deletes: allowed in T_trac
  // because the deleting states do not copy.
  Dtd din(&alphabet_, *alphabet_.Find("r"));
  ASSERT_TRUE(din.SetRule("r", "a").ok());
  ASSERT_TRUE(din.SetRule("a", "a | c").ok());
  Dtd dout(&alphabet_, *alphabet_.Find("r"));
  ASSERT_TRUE(dout.SetRule("r", "c c").ok());
  Transducer t(&alphabet_);
  t.AddState("q0");
  t.AddState("p");
  t.SetInitial(0);
  // Two parallel recursive deleters over the same a-spine.
  ASSERT_TRUE(t.SetRuleFromString("q0", "r", "r(p p)").ok());
  ASSERT_TRUE(t.SetRuleFromString("p", "a", "p").ok());
  ASSERT_TRUE(t.SetRuleFromString("p", "c", "c").ok());
  StatusOr<TypecheckResult> result = TypecheckTrac(t, din, dout);
  ASSERT_TRUE(result.ok());
  // Every spine bottoms out in exactly one c, copied twice: typechecks...
  // unless the spine bottoms out in an 'a' leaf? d_in requires a | c below
  // every a, so spines are infinite unless they end in c — but 'a' needs a
  // child, so every valid tree ends in c. Typechecks.
  EXPECT_TRUE(result->typechecks);
}

TEST_F(TracEdgeTest, StatsCountProductWork) {
  PaperExample ex = MakeBookExample(true);
  StatusOr<TypecheckResult> result =
      TypecheckTrac(*ex.transducer, *ex.din, *ex.dout);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->stats.product_states, 0u);
}

}  // namespace
}  // namespace xtc
