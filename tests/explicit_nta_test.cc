#include "src/core/explicit_nta.h"

#include "src/core/brute_force.h"

#include <gtest/gtest.h>

#include "src/core/paper_examples.h"
#include "src/core/trac.h"
#include "src/nta/analysis.h"
#include "src/td/widths.h"
#include "src/tree/codec.h"
#include "src/tree/hashcons.h"
#include "src/workload/families.h"
#include "src/workload/generators.h"

namespace xtc {
namespace {

TEST(ExplicitNtaTest, EmptyForTypecheckingInstances) {
  PaperExample ex = MakeBookExample(true);
  StatusOr<Nta> b =
      BuildCounterexampleNta(*ex.transducer, *ex.din, *ex.dout, 100000);
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_TRUE(IsEmptyLanguage(*b));
}

TEST(ExplicitNtaTest, WitnessOfFailingInstanceVerifies) {
  PaperExample ex = FailingFilterFamily(2);
  StatusOr<Nta> b =
      BuildCounterexampleNta(*ex.transducer, *ex.din, *ex.dout, 100000);
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(IsEmptyLanguage(*b));
  SharedForest forest;
  std::optional<int> id = WitnessTree(*b, &forest);
  ASSERT_TRUE(id.has_value());
  Arena arena;
  TreeBuilder builder(&arena);
  StatusOr<Node*> tree = forest.Materialize(*id, &builder, 1 << 16);
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE(VerifyCounterexample(*ex.transducer, *ex.din, *ex.dout, *tree))
      << ToTermString(*tree, *ex.alphabet);
}

TEST(ExplicitNtaTest, RootMismatchAcceptsAllValidTrees) {
  PaperExample ex = MakeBookExample(false);
  Transducer t(ex.alphabet.get());
  t.AddState("q0");
  t.SetInitial(0);
  ASSERT_TRUE(t.SetRuleFromString("q0", "book", "title").ok());
  StatusOr<Nta> b = BuildCounterexampleNta(t, *ex.din, *ex.dout, 100000);
  ASSERT_TRUE(b.ok());
  // Every valid input is a counterexample: B recognizes L(d_in).
  Arena arena;
  TreeBuilder builder(&arena);
  StatusOr<Node*> doc = ParseTerm(
      "book(title author chapter(title intro section(title paragraph)))",
      ex.alphabet.get(), &builder);
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE(b->Accepts(*doc));
  StatusOr<Node*> invalid =
      ParseTerm("book(title)", ex.alphabet.get(), &builder);
  ASSERT_TRUE(invalid.ok());
  EXPECT_FALSE(b->Accepts(*invalid));
}

// The central faithfulness property: the explicit Lemma 14 construction and
// the lazy engine decide the same instances.
class ExplicitVsLazyTest : public ::testing::TestWithParam<int> {};

TEST_P(ExplicitVsLazyTest, EmptinessAgreesWithLazyEngine) {
  RandomOptions opts;
  opts.num_symbols = 3;
  opts.num_states = 3;
  PaperExample ex =
      RandomInstance(static_cast<std::uint32_t>(GetParam()), opts, false);
  WidthAnalysis w = AnalyzeWidths(*ex.transducer);
  if (!w.dpw_bounded || w.copying_width * w.deletion_path_width > 4) {
    GTEST_SKIP() << "outside the explicit construction's comfortable range";
  }
  StatusOr<Nta> b =
      BuildCounterexampleNta(*ex.transducer, *ex.din, *ex.dout, 60000);
  if (!b.ok()) GTEST_SKIP() << "construction over budget";
  TypecheckOptions topts;
  topts.want_counterexample = false;
  StatusOr<TypecheckResult> lazy =
      TypecheckTrac(*ex.transducer, *ex.din, *ex.dout, topts);
  ASSERT_TRUE(lazy.ok());
  EXPECT_EQ(IsEmptyLanguage(*b), lazy->typechecks) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExplicitVsLazyTest, ::testing::Range(0, 40));

// Counterexample trees drawn from B are genuine counterexamples, and B
// accepts exactly the L(d_in) members that violate, on enumerated trees.
class ExplicitLanguageTest : public ::testing::TestWithParam<int> {};

TEST_P(ExplicitLanguageTest, MatchesDefinitionOnEnumeratedTrees) {
  RandomOptions opts;
  opts.num_symbols = 2;
  opts.num_states = 2;
  PaperExample ex =
      RandomInstance(static_cast<std::uint32_t>(GetParam()) + 1000, opts,
                     false);
  WidthAnalysis w = AnalyzeWidths(*ex.transducer);
  if (!w.dpw_bounded || w.copying_width * w.deletion_path_width > 4) {
    GTEST_SKIP();
  }
  StatusOr<Nta> b =
      BuildCounterexampleNta(*ex.transducer, *ex.din, *ex.dout, 60000);
  if (!b.ok()) GTEST_SKIP();
  Arena arena;
  TreeBuilder builder(&arena);
  BruteForceOptions bf;
  bf.max_depth = 3;
  bf.max_width = 2;
  bf.max_trees = 300;
  StatusOr<std::vector<Node*>> trees =
      EnumerateValidTrees(*ex.din, ex.din->start(), bf, &builder);
  ASSERT_TRUE(trees.ok());
  for (Node* t : *trees) {
    bool is_cex = VerifyCounterexample(*ex.transducer, *ex.din, *ex.dout, t);
    EXPECT_EQ(b->Accepts(t), is_cex)
        << ToTermString(t, *ex.alphabet) << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExplicitLanguageTest, ::testing::Range(0, 30));

}  // namespace
}  // namespace xtc
