#include "src/core/trac.h"

#include <gtest/gtest.h>

#include "src/core/brute_force.h"
#include "src/core/paper_examples.h"
#include "src/td/widths.h"
#include "src/tree/codec.h"
#include "src/workload/families.h"
#include "src/workload/generators.h"

namespace xtc {
namespace {

TEST(TracTest, Example11Typechecks) {
  // The book summary transducer typechecks against Example 11's DTD.
  PaperExample ex = MakeBookExample(/*with_summary=*/true);
  StatusOr<TypecheckResult> r = TypecheckTrac(*ex.transducer, *ex.din,
                                              *ex.dout);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->typechecks);
}

TEST(TracTest, TocTransducerTypechecks) {
  PaperExample ex = MakeBookExample(/*with_summary=*/false);
  StatusOr<TypecheckResult> r = TypecheckTrac(*ex.transducer, *ex.din,
                                              *ex.dout);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->typechecks);
}

TEST(TracTest, TightenedOutputSchemaFailsWithCounterexample) {
  PaperExample ex = MakeBookExample(/*with_summary=*/false);
  // Demand exactly one title after each chapter: deeper sections violate it.
  ASSERT_TRUE(ex.dout->SetRule("book", "title (chapter title)+").ok());
  StatusOr<TypecheckResult> r = TypecheckTrac(*ex.transducer, *ex.din,
                                              *ex.dout);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->typechecks);
  ASSERT_NE(r->counterexample, nullptr);
  EXPECT_TRUE(VerifyCounterexample(*ex.transducer, *ex.din, *ex.dout,
                                   r->counterexample));
}

TEST(TracTest, MissingInitialRuleFails) {
  PaperExample ex = MakeBookExample(false);
  Transducer empty(ex.alphabet.get());
  empty.AddState("q0");
  empty.SetInitial(0);
  StatusOr<TypecheckResult> r = TypecheckTrac(empty, *ex.din, *ex.dout);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->typechecks);
  ASSERT_NE(r->counterexample, nullptr);
  EXPECT_TRUE(VerifyCounterexample(empty, *ex.din, *ex.dout,
                                   r->counterexample));
}

TEST(TracTest, WrongRootLabelFails) {
  PaperExample ex = MakeBookExample(false);
  Transducer t(ex.alphabet.get());
  t.AddState("q0");
  t.SetInitial(0);
  ASSERT_TRUE(t.SetRuleFromString("q0", "book", "title").ok());
  StatusOr<TypecheckResult> r = TypecheckTrac(t, *ex.din, *ex.dout);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->typechecks);
  EXPECT_TRUE(VerifyCounterexample(t, *ex.din, *ex.dout, r->counterexample));
}

TEST(TracTest, EmptyInputLanguageTypechecksVacuously) {
  Alphabet alphabet;
  alphabet.Intern("r");
  Dtd din(&alphabet, 0);
  ASSERT_TRUE(din.SetRule("r", "r").ok());  // recursive: empty language
  Dtd dout(&alphabet, 0);
  Transducer t(&alphabet);
  t.AddState("q0");
  t.SetInitial(0);
  StatusOr<TypecheckResult> r = TypecheckTrac(t, din, dout);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->typechecks);
}

TEST(TracTest, FilterFamilyTypechecksAndFailingVariantDoesNot) {
  for (int n = 1; n <= 4; ++n) {
    PaperExample good = FilterFamily(n);
    StatusOr<TypecheckResult> r1 =
        TypecheckTrac(*good.transducer, *good.din, *good.dout);
    ASSERT_TRUE(r1.ok());
    EXPECT_TRUE(r1->typechecks) << n;

    PaperExample bad = FailingFilterFamily(n);
    StatusOr<TypecheckResult> r2 =
        TypecheckTrac(*bad.transducer, *bad.din, *bad.dout);
    ASSERT_TRUE(r2.ok());
    EXPECT_FALSE(r2->typechecks) << n;
    ASSERT_NE(r2->counterexample, nullptr);
    EXPECT_TRUE(VerifyCounterexample(*bad.transducer, *bad.din, *bad.dout,
                                     r2->counterexample))
        << ToTermString(r2->counterexample, *bad.alphabet);
  }
}

TEST(TracTest, WidthFamilies) {
  for (int c = 1; c <= 3; ++c) {
    for (int k = 0; k <= 2; ++k) {
      PaperExample ex = WidthFamily(c, k);
      StatusOr<TypecheckResult> r =
          TypecheckTrac(*ex.transducer, *ex.din, *ex.dout);
      ASSERT_TRUE(r.ok()) << c << "," << k << ": " << r.status().ToString();
      EXPECT_TRUE(r->typechecks) << c << "," << k;
    }
  }
}

TEST(TracTest, DeepCounterexampleThroughDeletion) {
  // Require at least 4 titles: only documents with nested sections comply;
  // the typechecker must find a counterexample with few sections.
  PaperExample ex = FilterFamily(1);
  Status s = ex.dout->SetRule("root", "title title title title title*");
  ASSERT_TRUE(s.ok());
  StatusOr<TypecheckResult> r =
      TypecheckTrac(*ex.transducer, *ex.din, *ex.dout);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->typechecks);
  EXPECT_TRUE(VerifyCounterexample(*ex.transducer, *ex.din, *ex.dout,
                                   r->counterexample));
}

// Property sweep: on random small instances, whenever the engine reports a
// counterexample it must verify, and whenever it reports success the
// bounded-exhaustive oracle must find no counterexample.
class TracRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(TracRandomTest, AgreesWithBruteForceOracle) {
  RandomOptions opts;
  opts.num_symbols = 3;
  opts.num_states = 3;
  PaperExample ex =
      RandomInstance(static_cast<std::uint32_t>(GetParam()), opts, false);
  WidthAnalysis w = AnalyzeWidths(*ex.transducer);
  if (!w.dpw_bounded || w.copying_width * w.deletion_path_width > 6) {
    GTEST_SKIP() << "instance outside the tractable sweep";
  }
  TypecheckOptions topts;
  StatusOr<TypecheckResult> r =
      TypecheckTrac(*ex.transducer, *ex.din, *ex.dout, topts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  if (!r->typechecks) {
    ASSERT_NE(r->counterexample, nullptr);
    EXPECT_TRUE(VerifyCounterexample(*ex.transducer, *ex.din, *ex.dout,
                                     r->counterexample))
        << ToTermString(r->counterexample, *ex.alphabet);
  } else {
    BruteForceOptions bf;
    bf.max_depth = 4;
    bf.max_width = 3;
    bf.max_trees = 30000;
    StatusOr<TypecheckResult> brute =
        TypecheckBruteForce(*ex.transducer, *ex.din, *ex.dout, bf);
    ASSERT_TRUE(brute.ok());
    EXPECT_TRUE(brute->typechecks)
        << "missed counterexample "
        << ToTermString(brute->counterexample, *ex.alphabet);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TracRandomTest, ::testing::Range(0, 60));

TEST(TracTest, StatsAreReported) {
  PaperExample ex = MakeBookExample(true);
  StatusOr<TypecheckResult> r =
      TypecheckTrac(*ex.transducer, *ex.din, *ex.dout);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->stats.configs, 0u);
  EXPECT_GT(r->stats.evaluations, 0u);
}

}  // namespace
}  // namespace xtc
