#include "src/tree/tree.h"

#include <string>

#include <gtest/gtest.h>

#include "src/tree/codec.h"
#include "src/tree/hashcons.h"

namespace xtc {
namespace {

class TreeTest : public ::testing::Test {
 protected:
  Arena arena_;
  TreeBuilder builder_{&arena_};
  Alphabet alphabet_;
};

TEST_F(TreeTest, BuildAndInspect) {
  int a = alphabet_.Intern("a");
  int b = alphabet_.Intern("b");
  Node* leaf1 = builder_.Leaf(b);
  Node* leaf2 = builder_.Leaf(b);
  Node* root = builder_.Make(a, std::vector<Node*>{leaf1, leaf2});
  EXPECT_EQ(root->label, a);
  EXPECT_EQ(root->child_count, 2u);
  EXPECT_EQ(Depth(root), 2);
  EXPECT_EQ(NodeCount(root), 3u);
}

TEST_F(TreeTest, DepthConventions) {
  // A single root has depth one (Section 2.1); the null tree is epsilon.
  EXPECT_EQ(Depth(nullptr), 0);
  EXPECT_EQ(Depth(builder_.Leaf(0)), 1);
}

TEST_F(TreeTest, TermRoundTrip) {
  StatusOr<Node*> t =
      ParseTerm("book(title author chapter(title intro section(title "
                "paragraph)))",
                &alphabet_, &builder_);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  std::string printed = ToTermString(*t, alphabet_);
  StatusOr<Node*> t2 = ParseTerm(printed, &alphabet_, &builder_);
  ASSERT_TRUE(t2.ok());
  EXPECT_TRUE(TreeEqual(*t, *t2));
  EXPECT_EQ(printed,
            "book(title author chapter(title intro section(title "
            "paragraph)))");
}

TEST_F(TreeTest, TermParseErrors) {
  EXPECT_FALSE(ParseTerm("a(b", &alphabet_, &builder_).ok());
  EXPECT_FALSE(ParseTerm("a)b", &alphabet_, &builder_).ok());
  EXPECT_FALSE(ParseTerm("", &alphabet_, &builder_).ok());
}

TEST_F(TreeTest, XmlRoundTrip) {
  StatusOr<Node*> t = ParseTerm("a(b c(d) b)", &alphabet_, &builder_);
  ASSERT_TRUE(t.ok());
  std::string xml = ToXml(*t, alphabet_);
  EXPECT_EQ(xml, "<a><b/><c><d/></c><b/></a>");
  StatusOr<Node*> back = ParseXml(xml, &alphabet_, &builder_);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(TreeEqual(*t, *back));
}

TEST_F(TreeTest, XmlPrettyPrintParses) {
  StatusOr<Node*> t = ParseTerm("a(b c(d))", &alphabet_, &builder_);
  ASSERT_TRUE(t.ok());
  std::string xml = ToXml(*t, alphabet_, /*indent=*/true);
  StatusOr<Node*> back = ParseXml(xml, &alphabet_, &builder_);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(TreeEqual(*t, *back));
}

TEST_F(TreeTest, XmlParseErrors) {
  EXPECT_FALSE(ParseXml("<a><b/></c>", &alphabet_, &builder_).ok());
  EXPECT_FALSE(ParseXml("<a attr=\"x\"/>", &alphabet_, &builder_).ok());
  EXPECT_FALSE(ParseXml("<a>text</a>", &alphabet_, &builder_).ok());
  EXPECT_FALSE(ParseXml("", &alphabet_, &builder_).ok());
}

TEST_F(TreeTest, HedgeHelpers) {
  StatusOr<Node*> t1 = ParseTerm("a(b)", &alphabet_, &builder_);
  StatusOr<Node*> t2 = ParseTerm("c", &alphabet_, &builder_);
  ASSERT_TRUE(t1.ok() && t2.ok());
  Hedge h{*t1, *t2};
  EXPECT_EQ(HedgeDepth(h), 2);
  EXPECT_EQ(HedgeNodeCount(h), 3u);
  std::vector<int> top = TopString(h);
  EXPECT_EQ(top.size(), 2u);
  EXPECT_EQ(alphabet_.Name(top[0]), "a");
  EXPECT_EQ(alphabet_.Name(top[1]), "c");
}

TEST_F(TreeTest, CloneIsDeepAndEqual) {
  StatusOr<Node*> t = ParseTerm("a(b(c) d)", &alphabet_, &builder_);
  ASSERT_TRUE(t.ok());
  Arena other;
  TreeBuilder other_builder(&other);
  Node* copy = other_builder.Clone(*t);
  EXPECT_TRUE(TreeEqual(*t, copy));
  EXPECT_NE(*t, copy);
}

TEST_F(TreeTest, SharedForestInternsEqualSubtrees) {
  SharedForest forest;
  int leaf = forest.Leaf(1);
  int leaf2 = forest.Leaf(1);
  EXPECT_EQ(leaf, leaf2);
  int n1 = forest.Make(0, std::vector<int>{leaf, leaf});
  int n2 = forest.Make(0, std::vector<int>{leaf, leaf});
  EXPECT_EQ(n1, n2);
  EXPECT_EQ(forest.size(), 2);
}

TEST_F(TreeTest, SharedForestUnfoldedSizeIsExponentialSafe) {
  SharedForest forest;
  // A doubling tower: node i has two copies of node i-1.
  int cur = forest.Leaf(0);
  for (int i = 0; i < 80; ++i) {
    cur = forest.Make(0, std::vector<int>{cur, cur});
  }
  EXPECT_EQ(forest.UnfoldedSize(cur), SharedForest::kSaturated);
  EXPECT_EQ(forest.UnfoldedDepth(cur), 81);
  EXPECT_EQ(forest.size(), 81);
  // Materialization fails gracefully.
  EXPECT_FALSE(forest.Materialize(cur, &builder_, 1 << 20).ok());
}

TEST_F(TreeTest, SharedForestMaterializeAndIntern) {
  StatusOr<Node*> t = ParseTerm("a(b(c) b(c))", &alphabet_, &builder_);
  ASSERT_TRUE(t.ok());
  SharedForest forest;
  int id = forest.Intern(*t);
  EXPECT_EQ(forest.size(), 3);  // c, b(c), a(...) shared
  EXPECT_EQ(forest.UnfoldedSize(id), 5u);
  StatusOr<Node*> back = forest.Materialize(id, &builder_, 100);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(TreeEqual(*t, *back));
}

}  // namespace
}  // namespace xtc
