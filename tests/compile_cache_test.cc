#include "src/service/compile_cache.h"

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/hash.h"
#include "src/schema/canonical.h"
#include "src/service/replay.h"
#include "src/td/canonical.h"
#include "src/workload/families.h"
#include "src/workload/generators.h"

namespace xtc {
namespace {

// A request universe + specs taken from a workload family instance.
struct Wire {
  std::vector<std::string> universe;
  SchemaSpec din;
  SchemaSpec dout;
  TransducerSpec transducer;
};

Wire WireOf(const PaperExample& ex) {
  StatusOr<ServiceRequest> request = TypecheckRequestFromExample(ex);
  XTC_CHECK(request.ok());
  StatusOr<std::vector<std::string>> universe = CollectUniverse(*request);
  XTC_CHECK(universe.ok());
  return Wire{*universe, request->din, request->dout, request->transducer};
}

TEST(CompileCacheTest, SecondLookupHitsAndSharesThePointer) {
  CompileCache cache;
  Wire wire = WireOf(FilterFamily(4));
  std::shared_ptr<Alphabet> alphabet = cache.GetOrCreateAlphabet(wire.universe);

  bool hit = true;
  StatusOr<std::shared_ptr<const CompiledSchema>> first =
      cache.GetOrCompileSchema(wire.din, alphabet, &hit);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(hit);
  StatusOr<std::shared_ptr<const CompiledSchema>> second =
      cache.GetOrCompileSchema(wire.din, alphabet, &hit);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(hit);
  // Content addressing: identical content has one pointer identity.
  EXPECT_EQ(first->get(), second->get());
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(CompileCacheTest, SerializationNoiseDoesNotSplitEntries) {
  CompileCache cache;
  Wire wire = WireOf(FilterFamily(3));
  std::shared_ptr<Alphabet> alphabet = cache.GetOrCreateAlphabet(wire.universe);

  StatusOr<std::shared_ptr<const CompiledSchema>> a =
      cache.GetOrCompileSchema(wire.din, alphabet, nullptr);
  ASSERT_TRUE(a.ok());

  // Same schema with rules reordered and regex whitespace/comma noise:
  // canonicalization must land on the same artifact.
  SchemaSpec noisy = wire.din;
  std::reverse(noisy.rules.begin(), noisy.rules.end());
  for (auto& [symbol, regex] : noisy.rules) {
    std::string spaced;
    for (char c : regex) {
      spaced.push_back(c);
      if (c == ' ') spaced.push_back(' ');
    }
    regex = " " + spaced + " ";
  }
  bool hit = false;
  StatusOr<std::shared_ptr<const CompiledSchema>> b =
      cache.GetOrCompileSchema(noisy, alphabet, &hit);
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_TRUE(hit);
  EXPECT_EQ(a->get(), b->get());
}

TEST(CompileCacheTest, StructurallyDifferentRulesSplitEntries) {
  CompileCache cache;
  SchemaSpec one;
  one.start = "r";
  one.rules = {{"r", "a b"}};
  SchemaSpec two;
  two.start = "r";
  two.rules = {{"r", "b a"}};
  // Same universe for both specs (they mention the same names).
  std::shared_ptr<Alphabet> alphabet =
      cache.GetOrCreateAlphabet({"a", "b", "r"});
  StatusOr<std::shared_ptr<const CompiledSchema>> first =
      cache.GetOrCompileSchema(one, alphabet, nullptr);
  StatusOr<std::shared_ptr<const CompiledSchema>> second =
      cache.GetOrCompileSchema(two, alphabet, nullptr);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_NE(first->get(), second->get());
  EXPECT_NE((*first)->key, (*second)->key);
  EXPECT_EQ(cache.stats().misses, 2u);
}

// The structural-hash equality/collision property over random instances:
// equal canonical text ⟺ equal artifact pointer, and the hash is a pure
// function of the text — artifacts are never aliased by hash value alone
// (lookup is by full key; the hash only buckets).
TEST(CompileCacheTest, StructuralHashPropertyOnRandomInstances) {
  CompileCache cache;
  RandomOptions options;
  std::map<std::string, const CompiledSchema*> by_key;
  std::map<std::uint64_t, std::set<std::string>> keys_by_hash;
  for (std::uint32_t seed = 0; seed < 40; ++seed) {
    PaperExample ex = RandomInstance(seed, options, /*re_plus=*/true);
    StatusOr<SchemaSpec> spec = SerializeSchema(*ex.din);
    ASSERT_TRUE(spec.ok());
    ServiceRequest probe;
    probe.op = ServiceOp::kValidate;
    probe.schema = *spec;
    probe.tree = "x";
    StatusOr<std::vector<std::string>> universe = CollectUniverse(probe);
    ASSERT_TRUE(universe.ok());
    std::shared_ptr<Alphabet> alphabet = cache.GetOrCreateAlphabet(*universe);
    StatusOr<std::shared_ptr<const CompiledSchema>> artifact =
        cache.GetOrCompileSchema(*spec, alphabet, nullptr);
    ASSERT_TRUE(artifact.ok()) << artifact.status().ToString();

    EXPECT_EQ((*artifact)->hash, HashBytes((*artifact)->key));
    auto [it, inserted] = by_key.emplace((*artifact)->key, artifact->get());
    if (!inserted) {
      EXPECT_EQ(it->second, artifact->get());  // equal text → same artifact
    }
    keys_by_hash[(*artifact)->hash].insert((*artifact)->key);
  }
  // If two distinct keys ever landed on one hash (a genuine collision),
  // the map above must still have kept them as distinct artifacts; nothing
  // to assert beyond type safety — but record that the property held for
  // every pair seen.
  for (const auto& [hash, keys] : keys_by_hash) {
    for (const std::string& key : keys) {
      ASSERT_EQ(by_key.count(key), 1u);
    }
  }
}

TEST(CompileCacheTest, LruEvictsUnderBytePressureColdestFirst) {
  CompileCache::Options options;
  options.max_bytes = 1;  // every insert overflows: only the newest survives
  CompileCache cache(options);
  Wire a = WireOf(FilterFamily(3));
  Wire b = WireOf(FilterFamily(4));
  std::shared_ptr<Alphabet> alpha_a = cache.GetOrCreateAlphabet(a.universe);
  std::shared_ptr<Alphabet> alpha_b = cache.GetOrCreateAlphabet(b.universe);

  ASSERT_TRUE(cache.GetOrCompileSchema(a.din, alpha_a, nullptr).ok());
  ASSERT_TRUE(cache.GetOrCompileSchema(b.din, alpha_b, nullptr).ok());
  CompileCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GE(stats.evictions, 1u);

  // The evicted (older) artifact recompiles; the newest is still cached.
  bool hit = true;
  ASSERT_TRUE(cache.GetOrCompileSchema(b.din, alpha_b, &hit).ok());
  EXPECT_TRUE(hit);
  ASSERT_TRUE(cache.GetOrCompileSchema(a.din, alpha_a, &hit).ok());
  EXPECT_FALSE(hit);
}

TEST(CompileCacheTest, BytesAreAccountedAndBounded) {
  CompileCache::Options options;
  options.max_bytes = 64 << 10;
  CompileCache cache(options);
  // Distinct schemas with real automata until well past the ceiling.
  for (int n = 2; n < 40; ++n) {
    Wire wire = WireOf(RelabFamily(n));
    std::shared_ptr<Alphabet> alphabet =
        cache.GetOrCreateAlphabet(wire.universe);
    ASSERT_TRUE(cache.GetOrCompileSchema(wire.din, alphabet, nullptr).ok());
    ASSERT_TRUE(cache.GetOrCompileSchema(wire.dout, alphabet, nullptr).ok());
  }
  CompileCache::Stats stats = cache.stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.bytes, options.max_bytes);
  EXPECT_GT(stats.bytes, 0u);
}

TEST(CompileCacheTest, UniverseEvictionCascadesToItsArtifacts) {
  CompileCache::Options options;
  options.max_universes = 1;
  CompileCache cache(options);
  Wire a = WireOf(FilterFamily(3));
  Wire b = WireOf(RelabFamily(3));

  std::shared_ptr<Alphabet> alpha_a = cache.GetOrCreateAlphabet(a.universe);
  ASSERT_TRUE(cache.GetOrCompileSchema(a.din, alpha_a, nullptr).ok());
  EXPECT_EQ(cache.stats().entries, 1u);

  // Universe B displaces A; A's artifact must go with it (it is bound to
  // the old Alphabet object by pointer).
  std::shared_ptr<Alphabet> alpha_b = cache.GetOrCreateAlphabet(b.universe);
  EXPECT_EQ(cache.stats().universes, 1u);
  EXPECT_EQ(cache.stats().entries, 0u);

  // Re-creating A's universe yields a fresh Alphabet object, and the
  // artifact recompiles bound to it.
  std::shared_ptr<Alphabet> alpha_a2 = cache.GetOrCreateAlphabet(a.universe);
  EXPECT_NE(alpha_a.get(), alpha_a2.get());
  bool hit = true;
  StatusOr<std::shared_ptr<const CompiledSchema>> again =
      cache.GetOrCompileSchema(a.din, alpha_a2, &hit);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(hit);
  EXPECT_EQ((*again)->alphabet.get(), alpha_a2.get());
}

TEST(CompileCacheTest, HostileScheduleCompileFailsSoftlyAndIsNotCached) {
  CompileCache::Options options;
  options.compile_max_bytes = 512;  // determinization trips the governor
  CompileCache cache(options);
  Wire wire = WireOf(NfaSchemaFamily(10));
  std::shared_ptr<Alphabet> alphabet = cache.GetOrCreateAlphabet(wire.universe);
  StatusOr<std::shared_ptr<const CompiledSchema>> artifact =
      cache.GetOrCompileSchema(wire.din, alphabet, nullptr);
  ASSERT_FALSE(artifact.ok());
  EXPECT_EQ(artifact.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(cache.stats().entries, 0u);  // failures are never cached
}

TEST(CompileCacheTest, TransducerArtifactCompilesSelectorsAndWidths) {
  CompileCache cache;
  Wire wire = WireOf(XPathChainFamily(3));
  std::shared_ptr<Alphabet> alphabet = cache.GetOrCreateAlphabet(wire.universe);
  StatusOr<std::shared_ptr<const CompiledTransducer>> artifact =
      cache.GetOrCompileTransducer(wire.transducer, alphabet, nullptr);
  ASSERT_TRUE(artifact.ok()) << artifact.status().ToString();
  EXPECT_TRUE((*artifact)->original->HasSelectors());
  EXPECT_FALSE((*artifact)->selector_free->HasSelectors());
  EXPECT_NE((*artifact)->original.get(), (*artifact)->selector_free.get());
  EXPECT_TRUE((*artifact)->widths.dpw_bounded);

  // Selector-free transducers share one object for both roles.
  Wire plain = WireOf(FilterFamily(3));
  std::shared_ptr<Alphabet> alpha2 = cache.GetOrCreateAlphabet(plain.universe);
  StatusOr<std::shared_ptr<const CompiledTransducer>> plain_artifact =
      cache.GetOrCompileTransducer(plain.transducer, alpha2, nullptr);
  ASSERT_TRUE(plain_artifact.ok());
  EXPECT_EQ((*plain_artifact)->original.get(),
            (*plain_artifact)->selector_free.get());
}

TEST(CompileCacheTest, CompiledSchemasAreFullyForced) {
  CompileCache cache;
  Wire wire = WireOf(NfaSchemaFamily(4));
  std::shared_ptr<Alphabet> alphabet = cache.GetOrCreateAlphabet(wire.universe);
  StatusOr<std::shared_ptr<const CompiledSchema>> artifact =
      cache.GetOrCompileSchema(wire.din, alphabet, nullptr);
  ASSERT_TRUE(artifact.ok()) << artifact.status().ToString();
  // Every lazy member is pre-forced (thread-compatibility contract) and the
  // non-DFA schema carries its determinization.
  EXPECT_TRUE((*artifact)->dtd->IsCompiled());
  ASSERT_NE((*artifact)->determinized, nullptr);
  EXPECT_TRUE((*artifact)->determinized->IsCompiled());
  EXPECT_TRUE((*artifact)->determinized->IsDfaDtd());
  EXPECT_EQ((*artifact)->determinized->alphabet(), alphabet.get());
}

TEST(CompileCacheTest, LazySnapshotsRoundTripAndAreLruAccounted) {
  CompileCache cache;
  auto snapshot = std::make_shared<LazySnapshot>();
  snapshot->det_tables.emplace_back();
  snapshot->det_tables[0].pool = {0, 1, 2};
  snapshot->det_tables[0].offsets = {0, 1, 3};
  snapshot->complete = true;
  snapshot->empty = true;

  EXPECT_EQ(cache.GetLazySnapshot("k1"), nullptr);
  cache.PutLazySnapshot("k1", snapshot);
  EXPECT_EQ(cache.GetLazySnapshot("k1").get(), snapshot.get());
  EXPECT_EQ(cache.GetLazySnapshot("k2"), nullptr);
  CompileCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.lazy_hits, 1u);
  EXPECT_EQ(stats.lazy_misses, 2u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GE(stats.bytes, snapshot->ApproxBytes());

  // First insert wins: a racing second snapshot for the same key is dropped.
  auto other = std::make_shared<LazySnapshot>(*snapshot);
  cache.PutLazySnapshot("k1", other);
  EXPECT_EQ(cache.GetLazySnapshot("k1").get(), snapshot.get());

  // Null snapshots are ignored rather than cached as tombstones.
  cache.PutLazySnapshot("k3", nullptr);
  EXPECT_EQ(cache.GetLazySnapshot("k3"), nullptr);
}

TEST(CompileCacheTest, LazySnapshotsEvictUnderBytePressureLikeArtifacts) {
  CompileCache::Options options;
  options.max_bytes = 1;  // every insert overflows: only the newest survives
  CompileCache cache(options);
  auto snap = [] {
    auto s = std::make_shared<LazySnapshot>();
    s->complete = true;
    return s;
  };
  cache.PutLazySnapshot("a", snap());
  cache.PutLazySnapshot("b", snap());
  CompileCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GE(stats.evictions, 1u);
  EXPECT_EQ(cache.GetLazySnapshot("a"), nullptr);
  EXPECT_NE(cache.GetLazySnapshot("b"), nullptr);
}

TEST(CompileCacheTest, LazySnapshotsSurviveUniverseCascades) {
  CompileCache::Options options;
  options.max_universes = 1;
  CompileCache cache(options);
  Wire a = WireOf(FilterFamily(3));
  Wire b = WireOf(RelabFamily(3));
  auto snapshot = std::make_shared<LazySnapshot>();
  snapshot->complete = true;
  cache.PutLazySnapshot("q", snapshot);

  // Displacing universe A with B cascades A's schema artifact away, but the
  // alphabet-independent snapshot entry stays.
  std::shared_ptr<Alphabet> alpha_a = cache.GetOrCreateAlphabet(a.universe);
  ASSERT_TRUE(cache.GetOrCompileSchema(a.din, alpha_a, nullptr).ok());
  cache.GetOrCreateAlphabet(b.universe);
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.GetLazySnapshot("q").get(), snapshot.get());
}

TEST(CompileCacheTest, WarmHitsAreServedFromTheSnapshotPath) {
  CompileCache cache;
  Wire wire = WireOf(FilterFamily(4));
  std::shared_ptr<Alphabet> alphabet = cache.GetOrCreateAlphabet(wire.universe);
  ASSERT_TRUE(cache.GetOrCompileSchema(wire.din, alphabet, nullptr).ok());

  // The insert published a fresh snapshot, so both warm lookups resolve on
  // the lock-free path: every hit is a snapshot hit, and an uncontended
  // single-thread run never records a convoy event.
  bool hit = false;
  ASSERT_TRUE(cache.GetOrCompileSchema(wire.din, alphabet, &hit).ok());
  EXPECT_TRUE(hit);
  ASSERT_TRUE(cache.GetOrCompileSchema(wire.din, alphabet, &hit).ok());
  EXPECT_TRUE(hit);
  CompileCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.snapshot_hits, 2u);
  EXPECT_EQ(stats.lock_waits, 0u);
}

TEST(CompileCacheTest, ShardCountRoundsToAPowerOfTwo) {
  const std::vector<std::pair<std::size_t, std::size_t>> cases = {
      {0, 1}, {1, 1}, {3, 4}, {8, 8}, {9, 16}, {100000, 4096}};
  for (auto [requested, expect] : cases) {
    CompileCache::Options options;
    options.shards = requested;
    CompileCache cache(options);
    EXPECT_EQ(cache.shard_count(), expect) << "requested " << requested;
    EXPECT_EQ(cache.stats().per_shard.size(), expect);
  }
}

TEST(CompileCacheTest, PerShardStatsSumToTheTotals) {
  CompileCache::Options options;
  options.shards = 4;
  CompileCache cache(options);
  for (int n = 2; n < 8; ++n) {
    Wire wire = WireOf(FilterFamily(n));
    std::shared_ptr<Alphabet> alphabet =
        cache.GetOrCreateAlphabet(wire.universe);
    ASSERT_TRUE(cache.GetOrCompileSchema(wire.din, alphabet, nullptr).ok());
    ASSERT_TRUE(cache.GetOrCompileSchema(wire.din, alphabet, nullptr).ok());
  }
  CompileCache::Stats stats = cache.stats();
  ASSERT_EQ(stats.per_shard.size(), 4u);
  std::uint64_t hits = 0, misses = 0, evictions = 0, snapshot_hits = 0;
  std::size_t bytes = 0, entries = 0;
  for (const CompileCache::ShardStats& shard : stats.per_shard) {
    hits += shard.hits;
    misses += shard.misses;
    evictions += shard.evictions;
    snapshot_hits += shard.snapshot_hits;
    bytes += shard.bytes;
    entries += shard.entries;
  }
  EXPECT_EQ(stats.hits, hits);
  EXPECT_EQ(stats.misses, misses);
  EXPECT_EQ(stats.evictions, evictions);
  EXPECT_EQ(stats.snapshot_hits, snapshot_hits);
  EXPECT_EQ(stats.bytes, bytes);
  EXPECT_EQ(stats.entries, entries);
  EXPECT_EQ(stats.hits, 6u);    // one warm repeat per family size
  EXPECT_EQ(stats.misses, 6u);  // one compile per family size
}

TEST(CompileCacheTest, ShardedByteCeilingHoldsAcrossShards) {
  CompileCache::Options options;
  options.shards = 4;
  options.max_bytes = 64 << 10;
  CompileCache cache(options);
  for (int n = 2; n < 40; ++n) {
    Wire wire = WireOf(RelabFamily(n));
    std::shared_ptr<Alphabet> alphabet =
        cache.GetOrCreateAlphabet(wire.universe);
    ASSERT_TRUE(cache.GetOrCompileSchema(wire.din, alphabet, nullptr).ok());
    ASSERT_TRUE(cache.GetOrCompileSchema(wire.dout, alphabet, nullptr).ok());
    // The global invariant holds after every insert, not just at the end:
    // accounted bytes never exceed the ceiling (= the sum of the per-shard
    // budgets), whichever shard the newest artifact hashed into.
    EXPECT_LE(cache.stats().bytes, options.max_bytes);
  }
  CompileCache::Stats stats = cache.stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GT(stats.bytes, 0u);
}

TEST(CompileCacheTest, UniverseCascadeReachesEveryShard) {
  CompileCache::Options options;
  options.shards = 8;
  options.max_universes = 1;
  CompileCache cache(options);
  // Spread artifacts of one universe across shards: distinct rule bodies
  // over one shared alphabet yield distinct keys, which hash to distinct
  // shards with high probability at 8 keys over 8 shards.
  std::shared_ptr<Alphabet> alphabet =
      cache.GetOrCreateAlphabet({"a", "b", "c", "r"});
  const std::vector<std::string> bodies = {"a",     "b",   "c",    "a b",
                                           "b a",   "a c", "c b a", "a b c"};
  for (const std::string& body : bodies) {
    SchemaSpec spec;
    spec.start = "r";
    spec.rules = {{"r", body}};
    ASSERT_TRUE(cache.GetOrCompileSchema(spec, alphabet, nullptr).ok());
  }
  std::size_t populated = 0;
  for (const CompileCache::ShardStats& shard : cache.stats().per_shard) {
    if (shard.entries > 0) ++populated;
  }
  ASSERT_GT(populated, 1u) << "specs all hashed into one shard; the "
                              "cross-shard cascade would be vacuous";

  // Displacing the universe must clear its artifacts in *every* shard.
  Wire other = WireOf(RelabFamily(3));
  cache.GetOrCreateAlphabet(other.universe);
  CompileCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.universes, 1u);
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
  for (const CompileCache::ShardStats& shard : stats.per_shard) {
    EXPECT_EQ(shard.entries, 0u);
    EXPECT_EQ(shard.bytes, 0u);
  }
}

TEST(CompileCacheTest, StaleAlphabetGenerationReadsAsAMiss) {
  CompileCache cache;
  Wire wire = WireOf(FilterFamily(3));
  std::shared_ptr<Alphabet> registered =
      cache.GetOrCreateAlphabet(wire.universe);
  ASSERT_TRUE(cache.GetOrCompileSchema(wire.din, registered, nullptr).ok());

  // A hand-built alphabet with the same names in the same order produces
  // the same canonical key, but it is a different object — the pointer
  // generation check must treat the cached artifact as stale rather than
  // hand out an artifact the engines would reject (they compare alphabets
  // by pointer).
  auto fresh = std::make_shared<Alphabet>();
  for (const std::string& name : wire.universe) fresh->Intern(name);
  bool hit = true;
  StatusOr<std::shared_ptr<const CompiledSchema>> artifact =
      cache.GetOrCompileSchema(wire.din, fresh, &hit);
  ASSERT_TRUE(artifact.ok()) << artifact.status().ToString();
  EXPECT_FALSE(hit);
  EXPECT_EQ((*artifact)->alphabet.get(), fresh.get());

  // The stale entry was erased and replaced: looking up with the fresh
  // alphabet again now hits.
  ASSERT_TRUE(cache.GetOrCompileSchema(wire.din, fresh, &hit).ok());
  EXPECT_TRUE(hit);
}

// TSan stress: lock-free warm readers race inserts, byte-pressure
// evictions, and universe cascades across shards. The assertions are
// deliberately weak (the schedule is nondeterministic); the test's real
// teeth are the tsan preset in ci/run_ci.sh, where any torn snapshot
// publication or unsynchronized map access is a hard failure.
TEST(CompileCacheStressTest, WarmHitsRaceInsertsEvictionsAndCascades) {
  CompileCache::Options options;
  options.shards = 4;
  options.max_bytes = 48 << 10;  // churn inserts overflow: evictions happen
  options.max_universes = 2;     // cascade thread displaces constantly
  CompileCache cache(options);

  struct Keyed {
    Wire wire;
    std::shared_ptr<Alphabet> alphabet;
  };
  std::vector<Keyed> warm;
  for (int n = 3; n < 7; ++n) {
    Keyed k{WireOf(FilterFamily(n)), nullptr};
    k.alphabet = cache.GetOrCreateAlphabet(k.wire.universe);
    ASSERT_TRUE(cache.GetOrCompileSchema(k.wire.din, k.alphabet, nullptr).ok());
    warm.push_back(std::move(k));
  }
  std::vector<Wire> churn;
  for (int n = 2; n < 14; ++n) churn.push_back(WireOf(RelabFamily(n)));
  Wire cascade_a = WireOf(XPathChainFamily(2));
  Wire cascade_b = WireOf(XPathChainFamily(3));

  std::vector<std::thread> threads;
  // Two warm readers: mostly lock-free snapshot hits; when a cascade
  // displaced their universe they observe a stale-generation miss and
  // recompile — still a correct artifact bound to their own alphabet.
  for (int reader = 0; reader < 2; ++reader) {
    threads.emplace_back([&warm, &cache, reader] {
      for (int i = 0; i < 200; ++i) {
        const Keyed& k = warm[static_cast<std::size_t>(reader + i) %
                              warm.size()];
        StatusOr<std::shared_ptr<const CompiledSchema>> artifact =
            cache.GetOrCompileSchema(k.wire.din, k.alphabet, nullptr);
        ASSERT_TRUE(artifact.ok());
        ASSERT_EQ((*artifact)->alphabet.get(), k.alphabet.get());
      }
    });
  }
  // Churn writer: distinct keys under byte pressure — inserts + evictions
  // + global reconcile racing the readers' snapshot acquires.
  threads.emplace_back([&churn, &cache] {
    for (int i = 0; i < 60; ++i) {
      const Wire& wire = churn[static_cast<std::size_t>(i) % churn.size()];
      std::shared_ptr<Alphabet> alphabet =
          cache.GetOrCreateAlphabet(wire.universe);
      ASSERT_TRUE(cache.GetOrCompileSchema(wire.din, alphabet, nullptr).ok());
    }
  });
  // Cascade thread: alternating universes past max_universes, so universe
  // evictions cascade into the shards while readers are probing them.
  threads.emplace_back([&cascade_a, &cascade_b, &cache] {
    for (int i = 0; i < 60; ++i) {
      const Wire& wire = (i & 1) != 0 ? cascade_b : cascade_a;
      std::shared_ptr<Alphabet> alphabet =
          cache.GetOrCreateAlphabet(wire.universe);
      ASSERT_TRUE(cache.GetOrCompileSchema(wire.din, alphabet, nullptr).ok());
    }
  });
  for (std::thread& thread : threads) thread.join();

  CompileCache::Stats stats = cache.stats();
  EXPECT_LE(stats.bytes, options.max_bytes);
  EXPECT_GE(stats.hits + stats.misses, 520u);  // every call counted once
  std::uint64_t per_shard_hits = 0, per_shard_misses = 0;
  for (const CompileCache::ShardStats& shard : stats.per_shard) {
    per_shard_hits += shard.hits;
    per_shard_misses += shard.misses;
  }
  EXPECT_EQ(stats.hits, per_shard_hits);
  EXPECT_EQ(stats.misses, per_shard_misses);
}

TEST(CanonicalTest, SkeletonAndCompiledDtdAgreeOnCanonicalText) {
  // The cache keys on the *skeleton's* canonical text; compiling (forcing
  // DFAs) must not change the address.
  Wire wire = WireOf(FilterFamily(4));
  Alphabet alphabet;
  for (const std::string& name : wire.universe) alphabet.Intern(name);
  StatusOr<Dtd> skeleton = BuildSchemaSkeleton(wire.din, &alphabet);
  ASSERT_TRUE(skeleton.ok());
  std::string before = CanonicalDtdText(*skeleton);
  std::uint64_t hash_before = StructuralDtdHash(*skeleton);
  ASSERT_TRUE(skeleton->Compile().ok());
  EXPECT_EQ(CanonicalDtdText(*skeleton), before);
  EXPECT_EQ(StructuralDtdHash(*skeleton), hash_before);
}

TEST(CanonicalTest, TransducerTextDistinguishesRulesAndStates) {
  Alphabet alphabet;
  for (const char* n : {"a", "b", "r"}) alphabet.Intern(n);
  TransducerSpec spec;
  spec.states = {"q0", "q"};
  spec.initial = "q0";
  spec.rules = {{"q0", "r", "r(q)"}, {"q", "a", "b"}};
  StatusOr<Transducer> t1 = BuildTransducerSkeleton(spec, &alphabet);
  ASSERT_TRUE(t1.ok());

  TransducerSpec other = spec;
  other.rules[1] = {"q", "a", "a"};
  StatusOr<Transducer> t2 = BuildTransducerSkeleton(other, &alphabet);
  ASSERT_TRUE(t2.ok());
  EXPECT_NE(CanonicalTransducerText(*t1), CanonicalTransducerText(*t2));

  // Rule insertion order is canonicalized away.
  TransducerSpec reordered = spec;
  std::swap(reordered.rules[0], reordered.rules[1]);
  StatusOr<Transducer> t3 = BuildTransducerSkeleton(reordered, &alphabet);
  ASSERT_TRUE(t3.ok());
  EXPECT_EQ(CanonicalTransducerText(*t1), CanonicalTransducerText(*t3));
  EXPECT_EQ(StructuralTransducerHash(*t1), StructuralTransducerHash(*t3));
}

}  // namespace
}  // namespace xtc
