#include "src/schema/re_plus.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace xtc {
namespace {

RePlus Parse(Alphabet* alphabet, const char* text) {
  StatusOr<RePlus> re = RePlus::Parse(text, alphabet);
  EXPECT_TRUE(re.ok()) << re.status().ToString();
  return *re;
}

TEST(RePlusTest, ParsesValidShapes) {
  Alphabet alphabet;
  RePlus re = Parse(&alphabet, "title author+ chapter+");
  ASSERT_EQ(re.factors().size(), 3u);
  EXPECT_FALSE(re.factors()[0].plus);
  EXPECT_TRUE(re.factors()[1].plus);
  EXPECT_TRUE(re.factors()[2].plus);
}

TEST(RePlusTest, EpsilonFactorsDropped) {
  Alphabet alphabet;
  RePlus re = Parse(&alphabet, "% a % b+ %");
  EXPECT_EQ(re.factors().size(), 2u);
}

TEST(RePlusTest, RejectsNonRePlusShapes) {
  Alphabet alphabet;
  EXPECT_FALSE(RePlus::Parse("a*", &alphabet).ok());
  EXPECT_FALSE(RePlus::Parse("a | b", &alphabet).ok());
  EXPECT_FALSE(RePlus::Parse("(a b)+", &alphabet).ok());
  EXPECT_FALSE(RePlus::Parse("a?", &alphabet).ok());
}

TEST(RePlusTest, NormalizationMergesAdjacentFactors) {
  Alphabet alphabet;
  // a a+ a b → a^{>=3} b^{=1}.
  RePlus re = Parse(&alphabet, "a a+ a b");
  std::vector<RePlus::NormFactor> norm = re.Normalized();
  ASSERT_EQ(norm.size(), 2u);
  EXPECT_EQ(norm[0].min_count, 3);
  EXPECT_TRUE(norm[0].unbounded);
  EXPECT_EQ(norm[1].min_count, 1);
  EXPECT_FALSE(norm[1].unbounded);
}

TEST(RePlusTest, MinAndVastStrings) {
  Alphabet alphabet;
  RePlus re = Parse(&alphabet, "a b+ c");
  int a = *alphabet.Find("a");
  int b = *alphabet.Find("b");
  int c = *alphabet.Find("c");
  EXPECT_EQ(re.MinString(), (std::vector<int>{a, b, c}));
  EXPECT_EQ(re.VastString(), (std::vector<int>{a, b, b, c}));
}

TEST(RePlusTest, MatchesAgainstDfaAgree) {
  Alphabet alphabet;
  alphabet.Intern("a");
  alphabet.Intern("b");
  alphabet.Intern("c");
  for (const char* pattern : {"a b+ c+", "a+ b a+", "a a a", "b+", "%"}) {
    RePlus re = Parse(&alphabet, pattern);
    Dfa dfa = re.ToDfa(alphabet.size());
    // Exhaustive words up to length 4 over 3 symbols.
    std::vector<std::vector<int>> words{{}};
    for (int len = 1; len <= 4; ++len) {
      std::size_t start = words.size();
      (void)start;
      std::vector<std::vector<int>> next;
      for (const auto& w : words) {
        if (static_cast<int>(w.size()) != len - 1) continue;
        for (int s = 0; s < 3; ++s) {
          std::vector<int> w2 = w;
          w2.push_back(s);
          next.push_back(w2);
        }
      }
      words.insert(words.end(), next.begin(), next.end());
    }
    for (const auto& w : words) {
      EXPECT_EQ(re.Matches(w), dfa.Accepts(w)) << pattern;
    }
  }
}

struct InclusionCase {
  const char* lhs;
  const char* rhs;
  bool included;
};

class RePlusInclusionTest : public ::testing::TestWithParam<InclusionCase> {};

TEST_P(RePlusInclusionTest, SyntacticAgreesWithAutomata) {
  Alphabet alphabet;
  alphabet.Intern("a");
  alphabet.Intern("b");
  alphabet.Intern("c");
  RePlus lhs = Parse(&alphabet, GetParam().lhs);
  RePlus rhs = Parse(&alphabet, GetParam().rhs);
  EXPECT_EQ(lhs.IncludedIn(rhs), GetParam().included);
  // Cross-check by DFA inclusion.
  Dfa dl = lhs.ToDfa(alphabet.size());
  Dfa dr = rhs.ToDfa(alphabet.size());
  EXPECT_EQ(dl.IncludedIn(dr), GetParam().included)
      << GetParam().lhs << " vs " << GetParam().rhs;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RePlusInclusionTest,
    ::testing::Values(InclusionCase{"a b", "a b", true},
                      InclusionCase{"a b", "a b+", true},
                      InclusionCase{"a b+", "a b", false},
                      InclusionCase{"a+ b", "a+ b+", true},
                      InclusionCase{"a a+", "a+", true},
                      InclusionCase{"a+", "a a+", false},
                      InclusionCase{"a b c", "a b+ c", true},
                      InclusionCase{"a c", "a b+ c", false},
                      InclusionCase{"%", "a+", false},
                      InclusionCase{"%", "%", true},
                      InclusionCase{"a+ a+", "a a+", true},
                      InclusionCase{"a+ b a+", "a+ b+ a+", true},
                      InclusionCase{"a+ b+ a+", "a+ b a+", false}));

TEST(RePlusTest, EquivalenceViaNormalForm) {
  Alphabet alphabet;
  RePlus x = Parse(&alphabet, "a a+ b");
  RePlus y = Parse(&alphabet, "a+ a b");
  EXPECT_TRUE(x.EquivalentTo(y));
  RePlus z = Parse(&alphabet, "a+ b");
  EXPECT_FALSE(x.EquivalentTo(z));
}

TEST(RePlusTest, IntersectionEmptinessAgainstProduct) {
  Alphabet alphabet;
  alphabet.Intern("a");
  alphabet.Intern("b");
  struct Group {
    std::vector<const char*> exprs;
    bool empty;
  };
  std::vector<Group> groups{
      {{"a+ b", "a a+ b"}, false},   // a a b works
      {{"a b", "a a"}, true},        // different block structure
      {{"a+", "a a a"}, false},      // a^3
      {{"a b+", "a+ b"}, false},     // a b
      {{"a a", "a a a+"}, true},     // 2 vs >=3
      {{"%", "a"}, true},
      {{"%", "%"}, false},
  };
  for (const Group& g : groups) {
    std::vector<RePlus> exprs;
    for (const char* e : g.exprs) exprs.push_back(Parse(&alphabet, e));
    EXPECT_EQ(RePlus::IntersectionEmpty(exprs), g.empty) << g.exprs[0];
    // Cross-check with DFA products.
    Dfa acc = exprs[0].ToDfa(alphabet.size());
    for (std::size_t i = 1; i < exprs.size(); ++i) {
      acc = Dfa::Product(acc, exprs[i].ToDfa(alphabet.size()),
                         Dfa::BoolOp::kAnd);
    }
    EXPECT_EQ(acc.IsEmpty(), g.empty) << g.exprs[0];
  }
}

TEST(RePlusTest, ToStringRoundTrip) {
  Alphabet alphabet;
  RePlus re = Parse(&alphabet, "title author+ chapter+");
  EXPECT_EQ(re.ToString(alphabet), "title author+ chapter+");
  RePlus eps = Parse(&alphabet, "%");
  EXPECT_EQ(eps.ToString(alphabet), "%");
}

}  // namespace
}  // namespace xtc
